"""Scatter-gather query routing across shards.

The :class:`ShardRouter` fans one query batch out to every live shard in
parallel (each shard engine is independent — its own pipeline, database
partition, and executor — so the fan-out threads never share mutable
state), then merges the per-shard answers deterministically:

* **answers/candidates** — set union across contributing shards.  Graph
  ids are globally unique and placement is disjoint, so the union *is*
  the unsharded answer set whenever every shard contributed (and during
  a crashed two-phase move, when a graph transiently exists on two
  shards, the union stays correct by construction).
* **timings** — ``filtering_time``/``verification_time`` sum (total work
  done), ``query_time`` is the max across shards (scatter-gather wall
  clock).
* **metadata.shards** — per-shard ``graphs/answers/candidates/time_s``
  rows plus the missing-shard list, so a caller can audit exactly which
  partition every answer came from.

Failure semantics follow the service's resilience model: each shard has
its own :class:`~repro.service.resilience.CircuitBreaker` fed by
crash-class failures only, and a shard that is down (breaker open,
raised mid-batch, or returned only crash/error results) makes the merged
result **partial** — flagged ``degraded`` with the missing shard list,
never silently wrong.  Only when *every* shard fails does the merged
result carry a failure.

The ``shard.query`` fault site fires per shard per batch (tag
``shard-<i>``), so tests and the CI smoke can deterministically take one
shard down without touching the others.

**Pruning.**  When the owning engine supplies a ``prune`` predicate
(label-summary pruning, see :mod:`repro.shard.summary`), the router
skips the (shard, query) pairs it soundly rules out *before* fanning
out: a shard receives only the sub-batch of queries its summary cannot
exclude, and a shard with nothing left to do is not dispatched at all.
A pruned pair is a **full merge participant** — the shard's provable
contribution is the empty set, so the merged result is *not* partial —
and is recorded as ``{"shard": i, "pruned": true}`` in the per-shard
rows.  Pruning even rides out a downed shard: a query the summary rules
out is complete whether or not that shard is reachable, so only its
*unpruned* queries degrade to partial.  (The summary lives parent-side
and is updated synchronously with mutations, so it is never stale with
respect to acknowledged state.)

**Host seam.**  The engine may supply a ``runner`` — how one shard
executes one sub-batch.  The default calls the shard engine in-process
(thread host); the process host routes the call over the shard worker's
pipe instead.  The fan-out threads are unchanged either way: under the
process host they merely block on pipe I/O (releasing the GIL) while
the shard processes do the matching in true parallel.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.core.metrics import QueryFailure, QueryResult
from repro.exec import faults

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.graph.labeled_graph import Graph
    from repro.shard.engine import _Shard

__all__ = ["ShardRouter"]


class ShardRouter:
    """Fans query batches across shards and merges their answers.

    Holds a *reference* to the owning engine's shard list, so a
    rebalance that grows or shrinks the fleet is picked up on the next
    batch without rebuilding the router.
    """

    def __init__(
        self,
        shards: "list[_Shard]",
        *,
        prune: "Callable[[_Shard, Graph], bool] | None" = None,
        runner: "Callable[[_Shard, list[Graph], float | None], list[QueryResult]] | None" = None,
    ) -> None:
        self._shards = shards
        self._prune = prune
        self._runner = runner
        self._counter_lock = threading.Lock()
        self._considered = 0
        self._pruned = 0

    def prune_counters(self) -> tuple[int, int]:
        """(shard-query pairs considered, pairs soundly skipped)."""
        with self._counter_lock:
            return self._considered, self._pruned

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------

    def query_many(
        self, queries: "list[Graph]", time_limit: float | None = None
    ) -> list[QueryResult]:
        """Scatter ``queries`` to every live shard; gather merged results."""
        shards = list(self._shards)
        # Positions each shard's summary soundly rules out, by shard index.
        pruned: dict[int, set[int]] = {}
        if self._prune is not None:
            for shard in shards:
                mask = {
                    i for i, q in enumerate(queries) if self._prune(shard, q)
                }
                if mask:
                    pruned[shard.index] = mask
            with self._counter_lock:
                self._considered += len(shards) * len(queries)
                self._pruned += sum(len(m) for m in pruned.values())
        # outcome per shard: ("ok", {position: result}) | ("down", reason)
        outcomes: dict[int, tuple[str, object]] = {}

        def fan(shard: "_Shard", positions: list[int]) -> None:
            sub = [queries[i] for i in positions]
            started = time.perf_counter()
            try:
                faults.trip("shard.query", tag=f"shard-{shard.index}")
                if self._runner is not None:
                    results = self._runner(shard, sub, time_limit)
                else:
                    results = shard.engine.query_many(
                        sub, time_limit=time_limit
                    )
            except Exception as exc:  # the shard, not the query, failed
                shard.breaker.record_failure()
                outcomes[shard.index] = (
                    "down", f"{type(exc).__name__}: {exc}"
                )
                return
            shard.histogram.record(time.perf_counter() - started)
            crashes = sum(
                1 for r in results
                if r.failure is not None and r.failure.kind == "crash"
            )
            if crashes:
                for _ in range(crashes):
                    shard.breaker.record_failure()
            else:
                shard.breaker.record_success()
            outcomes[shard.index] = (
                "ok", dict(zip(positions, results))
            )

        threads: list[threading.Thread] = []
        for shard in shards:
            mask = pruned.get(shard.index, set())
            positions = [i for i in range(len(queries)) if i not in mask]
            if not positions:
                # Every query in the batch was ruled out: the shard's
                # contribution is provably empty, no dispatch needed.
                outcomes[shard.index] = ("ok", {})
                continue
            if not shard.breaker.allow():
                outcomes[shard.index] = ("down", "breaker_open")
                continue
            if len(shards) == 1:
                fan(shard, positions)  # no threading for the trivial fleet
                continue
            t = threading.Thread(
                target=fan,
                args=(shard, positions),
                name=f"repro-shard-{shard.index}",
            )
            t.start()
            threads.append(t)
        for t in threads:
            t.join()
        return [
            self._merge(i, query, shards, outcomes, pruned)
            for i, query in enumerate(queries)
        ]

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    @staticmethod
    def _merge(
        index: int,
        query: "Graph",
        shards: "list[_Shard]",
        outcomes: dict[int, tuple[str, object]],
        pruned: dict[int, set[int]],
    ) -> QueryResult:
        answers: set[int] = set()
        candidates: set[int] = set()
        index_candidates: set[int] | None = set()
        have_index_candidates = True
        filtering = verification = 0.0
        wall = 0.0
        aux_bytes = 0
        timed_out = False
        degraded_engine = False
        missing: list[int] = []
        failures: list[QueryFailure] = []
        per_shard: list[dict] = []
        algorithm = None
        plan_outcome = None
        contributed = 0

        for shard in shards:
            if index in pruned.get(shard.index, ()):
                # Summary proved this shard contributes the empty set:
                # a full participant, not a missing shard.
                contributed += 1
                per_shard.append({
                    "shard": shard.index,
                    "graphs": len(shard.engine.db),
                    "pruned": True,
                })
                continue
            kind, value = outcomes[shard.index]
            if kind == "down":
                missing.append(shard.index)
                per_shard.append({"shard": shard.index, "down": value})
                continue
            result = value[index]
            row = {
                "shard": shard.index,
                "graphs": len(shard.engine.db),
                "answers": result.num_answers,
                "candidates": result.num_candidates,
                "time_s": result.query_time,
            }
            algorithm = result.algorithm
            if plan_outcome is None:
                plan_outcome = result.metadata.get("plan_cache")
            if result.failure is not None:
                # A failed shard result has no trustworthy answer set:
                # contribute nothing, mark the shard missing for this
                # query (crash/oom/oot/error alike).
                row["failure"] = result.failure.kind
                failures.append(result.failure)
                missing.append(shard.index)
                per_shard.append(row)
                continue
            contributed += 1
            answers |= result.answers
            candidates |= result.candidates
            if result.index_candidates is None:
                have_index_candidates = False
            elif have_index_candidates:
                index_candidates |= result.index_candidates
            filtering += result.filtering_time
            verification += result.verification_time
            wall = max(wall, result.query_time)
            aux_bytes += result.auxiliary_memory_bytes
            if result.timed_out:
                timed_out = True
                row["timed_out"] = True
            if result.metadata.get("degraded"):
                degraded_engine = True
                row["degraded"] = True
            per_shard.append(row)

        metadata: dict = {
            "degraded": degraded_engine or bool(missing),
            "shards": {
                "count": len(shards),
                "missing": sorted(set(missing)),
                "per_shard": per_shard,
            },
        }
        if plan_outcome is not None:
            metadata["plan_cache"] = plan_outcome
        failure = None
        if contributed == 0:
            # Nothing answered: a total failure, not a partial result.
            kinds = {f.kind for f in failures}
            failure = QueryFailure(
                kind=("crash" if "crash" in kinds or not failures
                      else failures[0].kind),
                message=(
                    f"all {len(shards)} shards unavailable: "
                    + "; ".join(
                        f"{row['shard']}: {row.get('down', row.get('failure'))}"
                        for row in per_shard
                    )
                ),
                stage="route",
            )
        elif missing:
            metadata["partial"] = True
            metadata["missing_shards"] = sorted(set(missing))
        return QueryResult(
            algorithm=algorithm or "sharded",
            query_name=query.name,
            answers=answers,
            candidates=candidates,
            index_candidates=(
                index_candidates if have_index_candidates and contributed
                else None
            ),
            filtering_time=filtering,
            verification_time=verification,
            timed_out=timed_out,
            query_time=wall,
            auxiliary_memory_bytes=aux_bytes,
            failure=failure,
            metadata=metadata,
        )
