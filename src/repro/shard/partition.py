"""Deterministic graph placement: which shard owns which graph id.

Placement must be a pure function of ``(gid, num_shards)`` so that every
component — the sharded engine, the router, the rebalancer, a recovering
process with no shared state — independently computes the same owner.
Two strategies ship:

* :class:`HashPartitioner` (the default) mixes the graph id through a
  splitmix64-style finalizer before taking the modulus, so densely
  allocated sequential ids spread evenly even when ``num_shards``
  divides common batch sizes;
* :class:`ModuloPartitioner` places ``gid % num_shards`` directly —
  transparent for tests and for operators who want to predict placement
  by eye.

Both are registered in :data:`PARTITIONER_NAMES` and constructed via
:func:`create_partitioner`, mirroring the executor registry in
``repro.exec.base``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = [
    "HashPartitioner",
    "ModuloPartitioner",
    "PARTITIONER_NAMES",
    "Partitioner",
    "create_partitioner",
]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """The splitmix64 finalizer: a cheap, well-dispersed 64-bit mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class Partitioner(ABC):
    """Maps a graph id to the index of the shard that owns it."""

    #: Registry key; subclasses override.
    name = "abstract"

    @abstractmethod
    def owner(self, gid: int, num_shards: int) -> int:
        """The shard index in ``[0, num_shards)`` that owns ``gid``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class HashPartitioner(Partitioner):
    """Mixes the gid through splitmix64 before the modulus (default)."""

    name = "hash"

    def owner(self, gid: int, num_shards: int) -> int:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if gid < 0:
            raise ValueError("graph ids are non-negative")
        return _mix64(gid) % num_shards


class ModuloPartitioner(Partitioner):
    """Places ``gid % num_shards`` directly — predictable by eye."""

    name = "modulo"

    def owner(self, gid: int, num_shards: int) -> int:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if gid < 0:
            raise ValueError("graph ids are non-negative")
        return gid % num_shards


PARTITIONER_NAMES: dict[str, type[Partitioner]] = {
    HashPartitioner.name: HashPartitioner,
    ModuloPartitioner.name: ModuloPartitioner,
}


def create_partitioner(name: str) -> Partitioner:
    """Instantiate a registered partitioner by name."""
    try:
        cls = PARTITIONER_NAMES[name]
    except KeyError:
        known = ", ".join(sorted(PARTITIONER_NAMES))
        raise ValueError(f"unknown partitioner {name!r} (known: {known})") from None
    return cls()
