"""Per-shard label summaries: the router's sound shard-pruning oracle.

A :class:`ShardSummary` is a cheap sketch of one shard's partition — how
many of its graphs contain each vertex label and each unordered edge
label pair (the l2Match-style label-pair/NLF idea applied at shard
granularity).  The router consults it before scattering a query: a data
graph can only contain the query as a subgraph if it contains **every**
query vertex label and **every** query edge label pair, so a shard whose
summary shows a query label (or pair) in *zero* of its graphs provably
holds no answers for that query and can be skipped outright.

Soundness of the skip (why a pruned shard is a full merge participant,
never a ``partial``): subgraph isomorphism preserves labels edge by
edge.  If graph ``G`` contains query ``Q`` then ``labels(Q) ⊆
labels(G)`` and every unordered pair ``{l(u), l(v)}`` over ``Q``'s
edges appears on some edge of ``G``.  Contrapositive: a shard where no
graph carries label ``l`` (or pair ``{a, b}``) contributes the empty
answer set for any query using it — exactly what the merge records.

Candidate parity: every filtering pipeline in this codebase (LDF/NLF
candidate seeding for CFL/CFQL/GraphQL/TurboIso, path indices for
Grapes/GGSX/CT-Index/...) already rejects a graph that misses a query
label or label pair, so pruning leaves ``result.candidates``
bit-identical too.  The one exception is the naive FV baselines
(VF2-FV, Ullmann-FV, QuickSI-FV, SPath-FV), which report *every* graph
as a candidate; under pruning their candidate sets shrink to the
unpruned shards (answers stay identical).  See ``docs/SHARDING.md``.

The summary is maintained incrementally (graph add/remove are O(graph)
count updates) and persisted beside the shard's snapshots with the WAL
sequence it reflects; staleness handling lives with the store
(:meth:`repro.store.IndexStore.load_summary`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.graph.database import GraphDatabase
    from repro.graph.labeled_graph import Graph

__all__ = ["ShardSummary"]

#: Bumped when the on-disk dict shape changes; a mismatched version is
#: treated as a missing summary (rebuilt from the database).
SUMMARY_FORMAT = 1


class ShardSummary:
    """Counts of graphs-per-label and graphs-per-label-pair in one shard."""

    __slots__ = ("label_counts", "pair_counts", "graphs")

    def __init__(self) -> None:
        #: label -> number of shard graphs whose vertex set carries it.
        self.label_counts: dict[int, int] = {}
        #: (min_label, max_label) -> number of shard graphs with an edge
        #: joining those labels.
        self.pair_counts: dict[tuple[int, int], int] = {}
        #: Total graphs folded in (add/remove keep it current).
        self.graphs: int = 0

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------

    @classmethod
    def from_database(cls, db: "GraphDatabase") -> "ShardSummary":
        """Exact summary of ``db``'s current contents."""
        summary = cls()
        for _, graph in db.items():
            summary.add_graph(graph)
        return summary

    def add_graph(self, graph: "Graph") -> None:
        for label in graph.label_set():
            self.label_counts[label] = self.label_counts.get(label, 0) + 1
        for pair in graph.edge_label_counts():
            self.pair_counts[pair] = self.pair_counts.get(pair, 0) + 1
        self.graphs += 1

    def remove_graph(self, graph: "Graph") -> None:
        for label in graph.label_set():
            count = self.label_counts.get(label, 0) - 1
            if count > 0:
                self.label_counts[label] = count
            else:
                self.label_counts.pop(label, None)
        for pair in graph.edge_label_counts():
            count = self.pair_counts.get(pair, 0) - 1
            if count > 0:
                self.pair_counts[pair] = count
            else:
                self.pair_counts.pop(pair, None)
        self.graphs = max(0, self.graphs - 1)

    # ------------------------------------------------------------------
    # The pruning test
    # ------------------------------------------------------------------

    def can_contain(self, query: "Graph") -> bool:
        """False only when the shard **provably** holds no answer.

        Checks every query vertex label and every unordered query edge
        label pair against the counts; any zero means no shard graph can
        embed the query.  ``True`` is merely "cannot rule it out".
        """
        if self.graphs == 0:
            return False
        labels = self.label_counts
        for label in query.label_set():
            if label not in labels:
                return False
        pairs = self.pair_counts
        for pair in query.edge_label_counts():
            if pair not in pairs:
                return False
        return True

    # ------------------------------------------------------------------
    # Serialisation (JSON-safe; pair keys become "a:b" strings)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": SUMMARY_FORMAT,
            "graphs": self.graphs,
            "labels": {str(k): v for k, v in sorted(self.label_counts.items())},
            "pairs": {
                f"{a}:{b}": v
                for (a, b), v in sorted(self.pair_counts.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSummary":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on a shape
        the current code doesn't understand (callers rebuild instead)."""
        if data.get("format") != SUMMARY_FORMAT:
            raise ValueError(
                f"unsupported shard summary format {data.get('format')!r}"
            )
        summary = cls()
        summary.graphs = int(data["graphs"])
        summary.label_counts = {
            int(k): int(v) for k, v in data["labels"].items()
        }
        pairs: dict[tuple[int, int], int] = {}
        for key, count in data["pairs"].items():
            a, b = key.split(":")
            pairs[(int(a), int(b))] = int(count)
        summary.pair_counts = pairs
        return summary

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardSummary):
            return NotImplemented
        return (
            self.graphs == other.graphs
            and self.label_counts == other.label_counts
            and self.pair_counts == other.pair_counts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardSummary graphs={self.graphs} "
            f"labels={len(self.label_counts)} pairs={len(self.pair_counts)}>"
        )
