"""The process-per-shard host: one long-lived subprocess per shard.

The threaded shard fleet (PR 9) runs every shard engine inside the
router's process, so CPU-bound matching gains almost nothing from adding
shards — the GIL serialises the per-shard work.  This module moves each
shard into its own persistent worker process, following the
``SubprocessExecutor``/``SupervisedExecutor`` playbook in ``repro.exec``
(persistent workers bound over a duplex pipe, ack-before-work dispatch,
drain-after-death receive, crash containment with exponential respawn
backoff) but at *shard* granularity: the child owns the whole shard —
its pipeline, its index, its ``IndexStore`` subdirectory, and its
write-ahead mutation log — and the parent keeps only a lightweight
mirror of the shard's database for routing, rebalancing, and summaries.

Protocol (parent -> child, child -> parent)::

    spawn args: (conn, index, partition db, pipeline, store dir, ...)
    <- ("ready", info)                 # after in-child build/WAL recovery
    -> ("query", queries, time_limit)
    <- ("ack", None)                   # the worker owns the batch now
    <- ("results", [QueryResult, ...]) # or ("error", exception)
    -> ("add", gid, graph, request_key)    <- ("ok", None)
    -> ("remove", gid, request_key)        <- ("ok", removed Graph)
    -> ("compact", None)                   <- ("ok", summary dict)
    -> ("stop", None)

The ``ready`` info ships the child's *recovered* database contents plus
the engine's post-build attributes (``wal_recovery``, ``index_source``,
``degraded``, recovered request keys, the shard's label summary), so the
parent can reconcile its mirror with whatever WAL replay produced inside
the child.  WAL ownership is strictly in-child: the parent never opens a
shard's store in process mode, so there is exactly one journal writer
per directory.

Crash semantics: a worker that dies mid-batch fails that batch — the
router flags the merged results partial, exactly like a downed thread
shard — and the next dispatch respawns the worker from its frozen base
partition (store mode: WAL recovery replays every acknowledged mutation,
so the respawned shard answers bit-identically) or from the parent's
current mirror (storeless mode).  Consecutive spawn failures back off
exponentially, mirroring :class:`~repro.exec.supervise.SupervisedExecutor`.

Fault sites: ``shard.worker:start`` fires in the child before ``ready``
(startup-failure tests) and ``shard.worker.query`` fires per dispatched
batch (tag ``shard-<i>``) — a ``crash`` there is the deterministic
"shard process dies mid-batch" used by the property tests and the CI
smoke (with a ``latch`` file so the respawned worker survives).
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.exec import faults
from repro.exec.pool import _preferred_context

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.metrics import QueryResult
    from repro.core.pipeline import QueryPipeline
    from repro.graph.database import GraphDatabase
    from repro.graph.labeled_graph import Graph

__all__ = ["ShardProcessHost", "ShardWorkerError", "recover_summary"]

_DEAD = object()
_TIMEOUT = object()


class ShardWorkerError(RuntimeError):
    """A shard's worker process is unavailable (died or cannot start)."""


# ----------------------------------------------------------------------
# Summary recovery (shared by the thread host and the in-child build)
# ----------------------------------------------------------------------


def recover_summary(engine) -> tuple["object", str]:
    """The shard's label summary after ``build_index``, plus its source.

    Loads the persisted summary when its ``wal_seq`` stamp matches the
    journal head *and* its graph count matches the recovered database
    (source ``"store"``); any staleness — a WAL tail replayed past the
    stamp, a mutation journaled after the last save, a torn or
    wrong-format file — rebuilds from the recovered database itself
    (source ``"rebuild"``), which *is* the fold of the replayed journal.
    The rebuilt summary is re-persisted at the current journal position,
    so the advisory file heals forward.  Storeless engines always build
    fresh (source ``"built"``).
    """
    from repro.shard.summary import ShardSummary

    store = getattr(engine, "store", None)
    if store is None:
        return ShardSummary.from_database(engine.db), "built"
    loaded = store.load_summary()
    if loaded is not None:
        data, wal_seq = loaded
        if wal_seq == store.wal.last_seq:
            try:
                summary = ShardSummary.from_dict(data)
            except (ValueError, KeyError, TypeError):
                summary = None
            if summary is not None and summary.graphs == len(engine.db):
                return summary, "store"
    summary = ShardSummary.from_database(engine.db)
    try:
        store.save_summary(summary.to_dict(), wal_seq=store.wal.last_seq)
    except OSError:
        pass  # advisory artifact; persistence is never a correctness gate
    return summary, "rebuild"


# ----------------------------------------------------------------------
# The child
# ----------------------------------------------------------------------


def _shard_worker_main(
    conn,
    index: int,
    db: "GraphDatabase",
    pipeline: "QueryPipeline",
    store_dir,
    plan_capacity: int,
    cache_capacity: int,
    fault_specs,
) -> None:
    faults.clear()
    faults.install(*fault_specs)
    from repro.core.engine import SubgraphQueryEngine

    tag = f"shard-{index}"
    try:
        faults.trip("shard.worker:start", tag=tag)
        engine = SubgraphQueryEngine(
            db, pipeline, cache=cache_capacity, plan_cache=plan_capacity
        )
        store = None
        if store_dir is not None:
            from repro.store import IndexStore

            store = IndexStore(store_dir)
        engine.build_index(store=store)
        summary, summary_source = recover_summary(engine)

        def wal_state() -> dict:
            # Mirrored parent-side so the service's journal-depth
            # compaction trigger keeps working with no store open there.
            if store is None:
                return {"wal_depth": 0, "wal_last_seq": 0}
            return {
                "wal_depth": store.wal.depth,
                "wal_last_seq": store.wal.last_seq,
            }

        conn.send((
            "ready",
            {
                "pid": os.getpid(),
                "graphs": list(engine.db.items()),
                "next_id": engine.db.next_id,
                **wal_state(),
                "indexing_time": engine.indexing_time,
                "degraded": engine.degraded,
                "degraded_reason": engine.degraded_reason,
                "index_source": engine.index_source,
                "store_recovery": engine.store_recovery,
                "store_save_error": engine.store_save_error,
                "wal_recovery": engine.wal_recovery,
                "recovered_request_keys": engine.recovered_request_keys,
                "summary": summary.to_dict(),
                "summary_source": summary_source,
            },
        ))
    except BaseException:
        os._exit(1)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        if op == "stop":
            break
        try:
            if op == "query":
                _, queries, time_limit = msg
                conn.send(("ack", None))
                # Chaos hook: a fault here models the shard process
                # failing while it owns a dispatched batch.
                faults.trip("shard.worker.query", tag=tag)
                results = engine.query_many(queries, time_limit=time_limit)
                for result in results:
                    result.metadata["shard_worker_pid"] = os.getpid()
                reply = ("results", results)
            elif op == "add":
                _, gid, graph, request_key = msg
                engine.add_graph_with_id(gid, graph, request_key=request_key)
                summary.add_graph(graph)
                reply = ("ok", wal_state())
            elif op == "remove":
                _, gid, request_key = msg
                removed = engine.remove_graph(gid, request_key=request_key)
                summary.remove_graph(removed)
                reply = ("ok", {"graph": removed, **wal_state()})
            elif op == "compact":
                compacted = engine.compact_store()
                try:
                    engine.store.save_summary(
                        summary.to_dict(), wal_seq=compacted["wal_seq"]
                    )
                except OSError:
                    pass
                reply = ("ok", {"result": compacted, **wal_state()})
            else:  # pragma: no cover - protocol mismatch
                reply = ("error", RuntimeError(f"unknown op {op!r}"))
        except Exception as exc:
            reply = ("error", exc)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# The parent
# ----------------------------------------------------------------------


class _Worker:
    """Parent-side record of one shard's worker process."""

    __slots__ = (
        "index", "proc", "conn", "lock", "store_dir", "db_supplier",
        "on_ready", "spawns", "restarts", "failures", "not_before",
        "last_exitcode", "pid",
    )

    def __init__(
        self,
        index: int,
        store_dir,
        db_supplier: "Callable[[], GraphDatabase]",
        on_ready: "Callable[[dict], None] | None",
    ) -> None:
        self.index = index
        self.proc = None
        self.conn = None
        #: Serialises whole request/response exchanges: the router's
        #: fan-out thread and a concurrent mutation must not interleave
        #: messages on one pipe.
        self.lock = threading.Lock()
        self.store_dir = store_dir
        self.db_supplier = db_supplier
        self.on_ready = on_ready
        self.spawns = 0
        self.restarts = 0
        #: Consecutive spawn/exchange failures, drives the backoff.
        self.failures = 0
        #: Monotonic time before which respawn attempts are refused.
        self.not_before = 0.0
        self.last_exitcode: int | None = None
        self.pid: int | None = None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class ShardProcessHost:
    """Spawns, supervises, and talks to one worker process per shard.

    The owning :class:`~repro.shard.engine.ShardedEngine` registers each
    shard with a *database supplier* (what to ship a fresh worker: the
    frozen base partition when a store is attached — WAL recovery
    replays mutations on top — or the live mirror when storeless) and an
    ``on_ready`` callback that reconciles the parent mirror from the
    child's recovered state.  Every exchange is crash-contained: a dead
    worker raises :class:`ShardWorkerError` (the router degrades that
    shard, nothing else), and the next exchange respawns it, subject to
    exponential backoff after consecutive failures.
    """

    def __init__(
        self,
        pipeline_factory: "Callable[[], QueryPipeline]",
        *,
        plan_cache: int = 256,
        cache: int = 0,
        ready_timeout: float = 300.0,
        ack_timeout: float = 30.0,
        respawn_backoff: float = 0.1,
        respawn_backoff_max: float = 5.0,
    ) -> None:
        self._pipeline_factory = pipeline_factory
        self._plan_cache = plan_cache
        self._cache = cache
        self._ready_timeout = ready_timeout
        self._ack_timeout = ack_timeout
        self._respawn_backoff = respawn_backoff
        self._respawn_backoff_max = respawn_backoff_max
        self._ctx = _preferred_context()
        self._workers: dict[int, _Worker] = {}

    # ------------------------------------------------------------------
    # Registration / lifecycle
    # ------------------------------------------------------------------

    def register(
        self,
        index: int,
        *,
        db_supplier: "Callable[[], GraphDatabase]",
        store_dir=None,
        on_ready: "Callable[[dict], None] | None" = None,
    ) -> dict:
        """Adopt shard ``index`` and spawn its worker; returns ready info.

        Startup failures here are *not* contained: the fleet is being
        built, and a shard that cannot start is a configuration problem
        the caller must see.
        """
        worker = _Worker(index, store_dir, db_supplier, on_ready)
        self._workers[index] = worker
        return self._spawn(worker)

    def stop(self, index: int) -> None:
        """Gracefully stop and forget one shard's worker (shrink path)."""
        worker = self._workers.pop(index, None)
        if worker is None:
            return
        with worker.lock:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop", None))
                except (BrokenPipeError, OSError):
                    pass
            self._scrap(worker, kill=True)

    def close(self) -> None:
        for index in list(self._workers):
            self.stop(index)

    # ------------------------------------------------------------------
    # Spawn / supervision internals
    # ------------------------------------------------------------------

    def _spawn(self, worker: _Worker) -> dict:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                worker.index,
                worker.db_supplier(),
                self._pipeline_factory(),
                worker.store_dir,
                self._plan_cache,
                self._cache,
                faults.active_specs(),
            ),
            daemon=True,
            name=f"repro-shard-worker-{worker.index}",
        )
        proc.start()
        child_conn.close()
        worker.proc, worker.conn = proc, parent_conn
        worker.spawns += 1
        worker.pid = proc.pid
        msg = self._recv(worker, self._ready_timeout)
        if msg is _DEAD or msg is _TIMEOUT or msg[0] != "ready":
            self._scrap(worker, kill=True)
            self._note_failure(worker)
            raise ShardWorkerError(
                f"shard {worker.index} worker failed to start "
                f"(exit code {worker.last_exitcode})"
            )
        worker.failures = 0
        worker.not_before = 0.0
        info = msg[1]
        if worker.on_ready is not None:
            worker.on_ready(info)
        return info

    def _scrap(self, worker: _Worker, kill: bool = False) -> None:
        proc, conn = worker.proc, worker.conn
        worker.proc = worker.conn = None
        if proc is not None:
            worker.last_exitcode = proc.exitcode
            if kill and proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
            worker.last_exitcode = proc.exitcode
            if hasattr(proc, "close"):
                proc.close()
        if conn is not None:
            conn.close()

    def _note_failure(self, worker: _Worker) -> None:
        worker.failures += 1
        backoff = min(
            self._respawn_backoff * (2 ** min(worker.failures - 1, 6)),
            self._respawn_backoff_max,
        )
        worker.not_before = time.monotonic() + backoff

    def _ensure(self, worker: _Worker) -> None:
        """A live worker, respawning if needed; raises on backoff/failure."""
        if worker.alive():
            return
        self._scrap(worker)
        if time.monotonic() < worker.not_before:
            raise ShardWorkerError(
                f"shard {worker.index} worker in respawn backoff "
                f"(consecutive failures: {worker.failures})"
            )
        worker.restarts += 1
        self._spawn(worker)  # raises ShardWorkerError on startup failure

    def _recv(self, worker: _Worker, timeout: float | None):
        """One message, or ``_DEAD``/``_TIMEOUT``; polls in 50ms steps and
        drains anything written just before the process died."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            try:
                if worker.conn.poll(0.05):
                    return worker.conn.recv()
            except (EOFError, OSError):
                return _DEAD
            if worker.proc is None or not worker.proc.is_alive():
                try:
                    if worker.conn.poll(0):
                        return worker.conn.recv()
                except (EOFError, OSError):
                    pass
                return _DEAD
            if deadline is not None and time.perf_counter() >= deadline:
                return _TIMEOUT

    def _worker(self, index: int) -> _Worker:
        try:
            return self._workers[index]
        except KeyError:
            raise ShardWorkerError(
                f"shard {index} is not registered with this host"
            ) from None

    def _exchange(self, index: int, message: tuple, expect_ack: bool = False):
        """Send one request and return its reply payload, crash-contained.

        Raises :class:`ShardWorkerError` when the worker is (or becomes)
        unavailable; re-raises the child's own exception when the reply
        is ``("error", exc)`` — a *logical* failure from a live worker,
        which therefore resets the supervision counters.
        """
        worker = self._worker(index)
        with worker.lock:
            self._ensure(worker)
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                self._scrap(worker, kill=True)
                self._note_failure(worker)
                raise ShardWorkerError(
                    f"shard {index} worker pipe broke on send"
                ) from None
            if expect_ack:
                ack = self._recv(worker, self._ack_timeout)
                if ack is _DEAD or ack is _TIMEOUT:
                    self._scrap(worker, kill=True)
                    self._note_failure(worker)
                    raise ShardWorkerError(
                        f"shard {index} worker died before acknowledging "
                        f"the batch (exit code {worker.last_exitcode})"
                    )
            reply = self._recv(worker, None)
            if reply is _DEAD:
                self._scrap(worker)
                self._note_failure(worker)
                raise ShardWorkerError(
                    f"shard {index} worker died mid-request "
                    f"(exit code {worker.last_exitcode})"
                )
            kind, payload = reply
            worker.failures = 0
            worker.not_before = 0.0
            if kind == "error":
                raise payload
            return payload

    # ------------------------------------------------------------------
    # The shard operations
    # ------------------------------------------------------------------

    def query_many(
        self, index: int, queries: "list[Graph]", time_limit: float | None
    ) -> "list[QueryResult]":
        return self._exchange(
            index, ("query", queries, time_limit), expect_ack=True
        )

    def add_graph(
        self, index: int, gid: int, graph: "Graph",
        request_key: str | None = None,
    ) -> dict:
        """Returns the worker's post-mutation WAL state dict."""
        return self._exchange(index, ("add", gid, graph, request_key))

    def remove_graph(
        self, index: int, gid: int, request_key: str | None = None
    ) -> dict:
        """Returns ``{"graph": removed, "wal_depth": ..., "wal_last_seq": ...}``."""
        return self._exchange(index, ("remove", gid, request_key))

    def compact(self, index: int) -> dict:
        """Returns ``{"result": compaction summary, "wal_depth": ..., ...}``."""
        return self._exchange(index, ("compact", None))

    # ------------------------------------------------------------------
    # Liveness reporting
    # ------------------------------------------------------------------

    def worker_row(self, index: int) -> dict:
        """Liveness row for ``stats``: pid / alive / spawns / restarts."""
        worker = self._workers.get(index)
        if worker is None:
            return {"pid": None, "alive": False, "spawns": 0, "restarts": 0}
        return {
            "pid": worker.pid,
            "alive": worker.alive(),
            "spawns": worker.spawns,
            "restarts": worker.restarts,
        }
