"""The sharded engine: N independent engines behind one engine surface.

:class:`ShardedEngine` partitions one :class:`~repro.graph.database.
GraphDatabase` into ``num_shards`` disjoint partitions (deterministic
placement by graph id through a pluggable :class:`~repro.shard.partition.
Partitioner`) and runs one full :class:`~repro.core.engine.
SubgraphQueryEngine` per partition — its own pipeline and index, its own
:class:`~repro.store.IndexStore` subdirectory and write-ahead mutation
log, its own (optionally supervised) worker pool.  Queries scatter-gather
through the :class:`~repro.shard.router.ShardRouter`; mutations route to
the owning shard only, so journaling, index maintenance, and worker-pool
invalidation all stay scoped to one partition.

The class is surface-compatible with :class:`SubgraphQueryEngine` where
the service and CLI touch it (``query``/``query_many``/``build_index``/
``add_graph``/``remove_graph``/``compact_store``/``stats`` accessors /
``close``), so everything downstream — the NDJSON service, ``bench-serve``,
the CLI verbs — runs unmodified over 1 or N shards.

Durable layout under ``store_root``::

    store_root/
      shards.json        # the manifest: num_shards / seed_shards / partitioner
      shard-00/          # one full IndexStore per shard (snapshots + WAL)
      shard-01/
      ...

**The manifest and the seed invariant.**  ``seed_shards`` records how the
*base* database (the graph file the service was started from) is
partitioned, and never changes: every shard's WAL is anchored to the
fingerprint of its base partition, so re-partitioning the base under a
different count would orphan every journal.  Growing the fleet
(``rebalance(target)``) therefore updates ``num_shards`` only — new
shards start with an empty base partition and receive graphs through
journaled two-phase moves — and shrinking below ``seed_shards`` is
rejected while a store is attached.  A restart must pass the manifest's
``num_shards`` (the CLI surfaces this as a structured configuration
error).

**Rebalance: the crash-safe two-phase move.**  For every graph sitting on
a shard that placement says should live elsewhere: journal + apply the
insertion on the *destination* first, then journal + apply the removal on
the source.  A crash between the phases leaves the graph on both shards —
queries stay correct (the router merges by set union) — and the next
rebalance heals the duplicate by deleting the non-owner copy.  Growth
writes the manifest *before* creating shards (a crash mid-grow restarts
into the larger fleet and re-runs the migration); shrink writes it
*after* the migration (a crash mid-shrink restarts into the old fleet
with some graphs already moved — still correct, still idempotent).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.engine import SubgraphQueryEngine
from repro.graph.database import GraphDatabase
from repro.service.resilience import CircuitBreaker
from repro.shard.host import ShardProcessHost, recover_summary
from repro.shard.partition import Partitioner, create_partitioner
from repro.shard.router import ShardRouter
from repro.shard.summary import ShardSummary
from repro.store import IndexStore
from repro.utils.errors import ConfigurationError
from repro.utils.fsio import atomic_write_text
from repro.utils.timing import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.metrics import QueryResult
    from repro.core.pipeline import QueryPipeline
    from repro.exec.base import QueryExecutor
    from repro.graph.labeled_graph import Graph

__all__ = ["MANIFEST_NAME", "SHARD_HOSTS", "ShardedEngine"]

#: The manifest file at the root of a sharded store.
MANIFEST_NAME = "shards.json"
MANIFEST_VERSION = 1

#: Where shard engines run: ``thread`` keeps every shard in-process
#: (fan-out threads share the GIL); ``process`` gives each shard a
#: long-lived worker process for true CPU parallelism.
SHARD_HOSTS = ("thread", "process")


@dataclass
class _Shard:
    """One partition: engine + health tracking, owned by the fleet.

    Under the thread host ``engine`` is the authoritative shard engine;
    under the process host it is a lightweight *mirror* (database copy +
    post-build attributes reconciled from the worker's ready message)
    and the authoritative engine lives in the shard's worker process.
    ``summary`` is the label summary the router prunes against — always
    parent-side, kept current by the mutation path in both modes.
    """

    index: int
    engine: SubgraphQueryEngine
    breaker: CircuitBreaker
    histogram: LatencyHistogram
    store_dir: Path | None = None
    summary: ShardSummary | None = None
    summary_source: str | None = None
    #: Process host only: the worker's journal state, mirrored from its
    #: replies so the service's compaction trigger sees real depths.
    wal_depth: int = 0
    wal_last_seq: int = 0


class _ShardedDbView:
    """Read-only union view over the shard databases.

    Gives the service and CLI the few ``GraphDatabase`` accessors they
    use (`len`, membership, item lookup, id listing) without ever
    materialising the union.
    """

    def __init__(self, shards: list[_Shard]) -> None:
        self._shards = shards

    def __len__(self) -> int:
        return sum(len(s.engine.db) for s in self._shards)

    def __contains__(self, gid: int) -> bool:
        return any(gid in s.engine.db for s in self._shards)

    def __getitem__(self, gid: int) -> "Graph":
        for shard in self._shards:
            if gid in shard.engine.db:
                return shard.engine.db[gid]
        raise KeyError(f"no graph with id {gid}")

    def __iter__(self):
        return iter(self.ids())

    def ids(self) -> list[int]:
        merged: set[int] = set()
        for shard in self._shards:
            merged.update(shard.engine.db.ids())
        return sorted(merged)

    @property
    def next_id(self) -> int:
        return max(s.engine.db.next_id for s in self._shards)


class ShardedExecutor:
    """Facade over the per-shard executors (stats / invalidate / close).

    Exists so service code that treats ``engine.executor`` as one object
    (the ``stats`` verb names its type; drains close it) works over the
    fleet unchanged.
    """

    def __init__(self, shards: list[_Shard]) -> None:
        self._shards = shards

    def worker_stats(self) -> dict:
        return {
            "executor": "ShardedExecutor",
            "shards": [
                {"shard": s.index, **(s.engine.executor_stats() or {})}
                for s in self._shards
            ],
        }

    def invalidate(self) -> None:
        for shard in self._shards:
            shard.engine.executor.invalidate()

    def close(self) -> None:
        for shard in self._shards:
            shard.engine.executor.close()


class _ShardWalView:
    """Aggregate journal depth, for the service's auto-compact trigger."""

    def __init__(self, shards: list[_Shard]) -> None:
        self._shards = shards

    @property
    def depth(self) -> int:
        return sum(
            s.engine.store.wal.depth if s.engine.store is not None
            else s.wal_depth
            for s in self._shards
        )

    @property
    def last_seq(self) -> int:
        return max(
            (s.engine.store.wal.last_seq if s.engine.store is not None
             else s.wal_last_seq
             for s in self._shards),
            default=0,
        )


class _ShardStoreView:
    """What ``engine.store`` looks like for a sharded fleet."""

    def __init__(self, root: Path, shards: list[_Shard]) -> None:
        self.directory = root
        self.wal = _ShardWalView(shards)


class ShardedEngine:
    """N per-partition engines behind one engine-compatible surface."""

    def __init__(
        self,
        db: GraphDatabase,
        num_shards: int,
        pipeline_factory: "Callable[[], QueryPipeline]",
        *,
        executor_factory: "Callable[[int], QueryExecutor] | None" = None,
        cache: int = 0,
        plan_cache: int = 256,
        partitioner: "str | Partitioner" = "hash",
        store_root: "str | Path | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        shard_host: str = "thread",
        pruning: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if shard_host not in SHARD_HOSTS:
            raise ConfigurationError(
                f"shard_host must be 'thread' or 'process', got {shard_host!r}"
            )
        if shard_host == "process" and executor_factory is not None:
            raise ConfigurationError(
                "the process shard host runs each shard in its own "
                "process; per-shard worker pools (executor_factory / "
                "--jobs) require the thread host"
            )
        self.partitioner = (
            create_partitioner(partitioner)
            if isinstance(partitioner, str) else partitioner
        )
        self.shard_host = shard_host
        self.pruning = bool(pruning)
        self._pipeline_factory = pipeline_factory
        self._executor_factory = executor_factory
        self._cache_capacity = cache
        self._plan_cache_capacity = plan_cache
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._store_root = Path(store_root) if store_root is not None else None
        self.seed_shards = self._load_or_create_manifest(num_shards)
        # The base database is always partitioned by ``seed_shards`` —
        # the invariant every shard WAL's base fingerprint depends on.
        partitions = [GraphDatabase(name=f"shard-{i}") for i in range(num_shards)]
        for gid, graph in db.items():
            owner = self.partitioner.owner(gid, self.seed_shards)
            if owner >= num_shards:  # pragma: no cover - guarded by manifest
                raise ConfigurationError(
                    f"graph {gid} belongs to shard {owner} but only "
                    f"{num_shards} shards are configured"
                )
            partitions[owner].add_graph_with_id(gid, graph)
        from repro.matching.plan import PlanCache

        #: One plan cache shared by every shard: plans depend only on the
        #: query graph, so a query planned once is planned for the fleet.
        #: (Process host: each worker keeps its own cache instead — a
        #: compiled plan cannot be shared across a pipe cheaply.)
        self.plans = PlanCache(plan_cache) if plan_cache else None
        #: Process host only: the frozen seed partitions.  A respawned
        #: worker with a store must be shipped its *base* partition — the
        #: slice its WAL base fingerprint is anchored to — so recovery
        #: can replay the journal on top.  Never mutated after this.
        self._base_partitions: list[GraphDatabase] | None = (
            partitions if shard_host == "process" else None
        )
        self._host: ShardProcessHost | None = None
        if shard_host == "process":
            self._host = ShardProcessHost(
                pipeline_factory,
                plan_cache=plan_cache,
                cache=cache,
            )
        self._shards: list[_Shard] = [
            self._make_shard(i, partitions[i]) for i in range(num_shards)
        ]
        host = self._host
        self.router = ShardRouter(
            self._shards,
            prune=self._prunable,
            runner=(
                None if host is None
                else lambda shard, queries, time_limit: host.query_many(
                    shard.index, queries, time_limit
                )
            ),
        )
        self.db = _ShardedDbView(self._shards)
        self.executor = ShardedExecutor(self._shards)
        self._index_built = False
        self.indexing_time = 0.0
        self.compactions = 0
        # Aggregates mirroring SubgraphQueryEngine's post-build attributes.
        self.degraded = False
        self.degraded_reason: str | None = None
        self.index_source: str | None = None
        self.store_recovery: str | None = None
        self.store_save_error: str | None = None
        self.wal_recovery: dict | None = None
        self.recovered_request_keys: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _make_shard(self, index: int, db: GraphDatabase) -> _Shard:
        if self._host is not None:
            # Process host: ``db`` is (or becomes) the frozen base
            # partition; the parent-side engine is only a mirror, so it
            # gets its own database copy and never builds an index.
            mirror = GraphDatabase(name=f"shard-{index}")
            for gid, graph in db.items():
                mirror.add_graph_with_id(gid, graph)
            db = mirror
        executor = (
            self._executor_factory(index)
            if self._executor_factory is not None else None
        )
        engine = SubgraphQueryEngine(
            db,
            self._pipeline_factory(),
            executor=executor,
            cache=self._cache_capacity,
            plan_cache=0,
        )
        engine.plans = self.plans
        return _Shard(
            index=index,
            engine=engine,
            breaker=CircuitBreaker(
                threshold=self._breaker_threshold,
                cooldown=self._breaker_cooldown,
            ),
            histogram=LatencyHistogram(),
            store_dir=self._shard_dir(index),
        )

    def _shard_dir(self, index: int) -> Path | None:
        if self._store_root is None:
            return None
        return self._store_root / f"shard-{index:02d}"

    # ------------------------------------------------------------------
    # Process-host plumbing
    # ------------------------------------------------------------------

    def _register_shard_worker(self, shard: _Shard) -> None:
        """Spawn (and adopt the ready state of) one shard's worker.

        The database supplier decides what a fresh worker is shipped:
        with a store, the frozen *base* partition — the worker's WAL is
        anchored to its fingerprint, and in-child recovery replays every
        acknowledged mutation on top; without a store, the parent's live
        mirror, which already holds every mutation applied so far.
        """
        assert self._host is not None and self._base_partitions is not None
        index = shard.index
        if shard.store_dir is not None:
            supplier = lambda: self._base_partitions[index]  # noqa: E731
        else:
            supplier = lambda: shard.engine.db  # noqa: E731
        self._host.register(
            index,
            db_supplier=supplier,
            store_dir=shard.store_dir,
            on_ready=lambda info: self._adopt_ready(shard, info),
        )

    def _adopt_ready(self, shard: _Shard, info: dict) -> None:
        """Reconcile the parent mirror from a worker's ready message.

        Runs on every (re)spawn: the child's WAL recovery is the source
        of truth for the shard's contents, so the mirror database is
        replaced wholesale and the engine's post-build attributes are
        copied over for ``shard_stats``/aggregation to read as usual.
        """
        shard.engine.db.restore(list(info["graphs"]), info["next_id"])
        shard.wal_depth = info["wal_depth"]
        shard.wal_last_seq = info["wal_last_seq"]
        engine = shard.engine
        engine.indexing_time = info["indexing_time"]
        engine.degraded = info["degraded"]
        engine.degraded_reason = info["degraded_reason"]
        engine.index_source = info["index_source"]
        engine.store_recovery = info["store_recovery"]
        engine.store_save_error = info["store_save_error"]
        engine.wal_recovery = info["wal_recovery"]
        engine.recovered_request_keys = list(info["recovered_request_keys"])
        shard.summary = ShardSummary.from_dict(info["summary"])
        shard.summary_source = info["summary_source"]

    def _prunable(self, shard: _Shard, query: "Graph") -> bool:
        """True when the router may soundly skip ``shard`` for ``query``."""
        return (
            self.pruning
            and shard.summary is not None
            and not shard.summary.can_contain(query)
        )

    def _require_workers(self) -> None:
        if self._host is not None and not self._index_built:
            raise ConfigurationError(
                "the process shard host spawns its workers in "
                "build_index(); build before mutating"
            )

    # ------------------------------------------------------------------
    # Host-agnostic single-shard mutations
    # ------------------------------------------------------------------

    def _shard_add(
        self,
        shard: _Shard,
        gid: int,
        graph: "Graph",
        request_key: str | None = None,
    ) -> None:
        if self._host is not None:
            # The worker journals + applies + indexes; only after its ack
            # does the parent mirror the insertion and fold the summary.
            state = self._host.add_graph(
                shard.index, gid, graph, request_key=request_key
            )
            shard.engine.db.add_graph_with_id(gid, graph)
            shard.wal_depth = state["wal_depth"]
            shard.wal_last_seq = state["wal_last_seq"]
        else:
            shard.engine.add_graph_with_id(gid, graph, request_key=request_key)
        if shard.summary is not None:
            shard.summary.add_graph(graph)

    def _shard_remove(
        self, shard: _Shard, gid: int, request_key: str | None = None
    ) -> "Graph":
        if self._host is not None:
            state = self._host.remove_graph(
                shard.index, gid, request_key=request_key
            )
            removed = state["graph"]
            shard.engine.db.remove_graph(gid)
            shard.wal_depth = state["wal_depth"]
            shard.wal_last_seq = state["wal_last_seq"]
        else:
            removed = shard.engine.remove_graph(gid, request_key=request_key)
        if shard.summary is not None:
            shard.summary.remove_graph(removed)
        return removed

    def _load_or_create_manifest(self, num_shards: int) -> int:
        """Returns ``seed_shards``; validates or writes the manifest."""
        if self._store_root is None:
            return num_shards
        path = self._store_root / MANIFEST_NAME
        if path.exists():
            try:
                manifest = json.loads(path.read_text())
            except ValueError as exc:
                raise ConfigurationError(
                    f"unreadable shard manifest {path}: {exc}"
                ) from exc
            if manifest.get("version") != MANIFEST_VERSION:
                raise ConfigurationError(
                    f"shard manifest {path} has unsupported version "
                    f"{manifest.get('version')!r}"
                )
            if manifest.get("partitioner") != self.partitioner.name:
                raise ConfigurationError(
                    f"store {self._store_root} was sharded with the "
                    f"{manifest.get('partitioner')!r} partitioner; "
                    f"requested {self.partitioner.name!r}"
                )
            if manifest.get("num_shards") != num_shards:
                raise ConfigurationError(
                    f"store {self._store_root} is sharded "
                    f"{manifest.get('num_shards')} ways; restart with "
                    f"--shards {manifest.get('num_shards')} (or rebalance "
                    "to the new count first)"
                )
            return int(manifest["seed_shards"])
        self._write_manifest(num_shards, num_shards)
        return num_shards

    def _write_manifest(self, num_shards: int, seed_shards: int) -> None:
        if self._store_root is None:
            return
        self._store_root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self._store_root / MANIFEST_NAME,
            json.dumps(
                {
                    "version": MANIFEST_VERSION,
                    "num_shards": num_shards,
                    "seed_shards": seed_shards,
                    "partitioner": self.partitioner.name,
                },
                indent=2,
                sort_keys=True,
            ) + "\n",
        )

    # ------------------------------------------------------------------
    # Engine surface
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shards[0].engine.name

    @property
    def pipeline(self):
        """First shard's pipeline (all shards run identical pipelines);
        gives callers the usual ``engine.pipeline.uses_index`` surface."""
        return self._shards[0].engine.pipeline

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def cache(self):
        """First shard's containment cache (None when caching is off)."""
        return self._shards[0].engine.cache

    @property
    def store(self) -> "_ShardStoreView | None":
        if self._store_root is None:
            return None
        return _ShardStoreView(self._store_root, self._shards)

    def build_index(
        self,
        time_limit: float | None = None,
        fallback: bool = False,
        store: "IndexStore | None" = None,
    ) -> float:
        """Build or warm-start every shard's index **independently**.

        Each shard recovers on its own: a corrupt snapshot or quarantined
        journal on one shard triggers that shard's rebuild without
        touching its siblings.  Per-shard recovery counters are summed
        into ``wal_recovery`` (per-shard rows stay available through
        :meth:`store_stats`).
        """
        if store is not None:
            raise ConfigurationError(
                "a sharded engine manages one store per shard; construct "
                "it with store_root=... instead of passing a store here"
            )
        total = 0.0
        keys: list[tuple[str, str, int]] = []
        recovery_total: dict | None = None
        sources: set[str | None] = set()
        for shard in self._shards:
            if self._host is not None:
                self._register_shard_worker(shard)
                total += shard.engine.indexing_time
            else:
                shard_store = (
                    IndexStore(shard.store_dir) if shard.store_dir is not None
                    else None
                )
                total += shard.engine.build_index(
                    time_limit, fallback, store=shard_store
                )
                shard.summary, shard.summary_source = recover_summary(
                    shard.engine
                )
            keys.extend(shard.engine.recovered_request_keys)
            sources.add(shard.engine.index_source)
            if shard.engine.degraded and not self.degraded:
                self.degraded = True
                self.degraded_reason = shard.engine.degraded_reason
            if shard.engine.store_recovery and self.store_recovery is None:
                self.store_recovery = shard.engine.store_recovery
            if shard.engine.store_save_error and self.store_save_error is None:
                self.store_save_error = shard.engine.store_save_error
            if shard.engine.wal_recovery is not None:
                if recovery_total is None:
                    recovery_total = {
                        "folded_seq": 0, "log_records": 0, "replayed": 0,
                        "truncated": 0, "reason": None, "quarantined": False,
                    }
                rec = shard.engine.wal_recovery
                recovery_total["folded_seq"] = max(
                    recovery_total["folded_seq"], rec["folded_seq"]
                )
                for key in ("log_records", "replayed", "truncated"):
                    recovery_total[key] += rec[key]
                if rec["reason"] and recovery_total["reason"] is None:
                    recovery_total["reason"] = rec["reason"]
                recovery_total["quarantined"] = (
                    recovery_total["quarantined"] or rec["quarantined"]
                )
        self.wal_recovery = recovery_total
        self.recovered_request_keys = keys
        real_sources = {s for s in sources if s is not None}
        if real_sources:
            self.index_source = (
                real_sources.pop() if len(real_sources) == 1 else "mixed"
            )
        self.indexing_time = total
        self._index_built = True
        return total

    def query(
        self, query: "Graph", time_limit: float | None = None
    ) -> "QueryResult":
        return self.query_many([query], time_limit=time_limit)[0]

    def query_many(
        self, queries: "list[Graph]", time_limit: float | None = None
    ) -> "list[QueryResult]":
        for q in queries:
            if q.num_vertices == 0:
                raise ConfigurationError(
                    "query graph must have at least one vertex"
                )
        if not self._index_built:
            raise ConfigurationError(
                f"{self.name} requires build_index() before querying"
            )
        return self.router.query_many(queries, time_limit=time_limit)

    # ------------------------------------------------------------------
    # Shard-targeted mutations
    # ------------------------------------------------------------------

    @property
    def next_id(self) -> int:
        return self.db.next_id

    def owner_of(self, gid: int) -> int:
        """The shard placement says should hold ``gid`` (current fleet)."""
        return self.partitioner.owner(gid, len(self._shards))

    def add_graph(
        self,
        graph: "Graph",
        store: "IndexStore | None" = None,
        request_key: str | None = None,
    ) -> int:
        """Insert on the owning shard only (journal, index, pool — all
        scoped to that one partition)."""
        if store is not None:
            raise ConfigurationError(
                "sharded mutations journal through per-shard stores"
            )
        self._require_workers()
        gid = self.next_id
        shard = self._shards[self.owner_of(gid)]
        self._shard_add(shard, gid, graph, request_key=request_key)
        return gid

    def remove_graph(
        self,
        gid: int,
        store: "IndexStore | None" = None,
        request_key: str | None = None,
    ) -> "Graph":
        """Delete ``gid`` from every shard holding it.

        Normally exactly one shard holds a graph; a crash between the two
        phases of a rebalance move can briefly leave a duplicate, and a
        removal must take *both* copies out or the graph would resurrect.
        Raises :class:`KeyError` when no shard holds ``gid``.
        """
        if store is not None:
            raise ConfigurationError(
                "sharded mutations journal through per-shard stores"
            )
        self._require_workers()
        removed: "Graph | None" = None
        for shard in self._shards:
            if gid in shard.engine.db:
                removed = self._shard_remove(shard, gid, request_key=request_key)
        if removed is None:
            raise KeyError(f"no graph with id {gid}")
        return removed

    # ------------------------------------------------------------------
    # Rebalance (the two-phase move)
    # ------------------------------------------------------------------

    def rebalance(self, target_shards: int | None = None) -> dict:
        """Migrate graphs so every one sits on its owning shard.

        With ``target_shards`` the fleet first grows (new empty shards,
        manifest updated up front) or shrinks (manifest updated after the
        migration; refuses to drop below ``seed_shards`` while a store is
        attached).  Every move is the journaled two-phase protocol from
        the module docstring; duplicates left by an interrupted move are
        healed.  Idempotent: a second call moves nothing.
        """
        target = target_shards if target_shards is not None else len(self._shards)
        if target < 1:
            raise ConfigurationError("target shard count must be at least 1")
        if self._store_root is not None and target < self.seed_shards:
            raise ConfigurationError(
                f"cannot shrink below the seed shard count "
                f"({self.seed_shards}): every shard journal is anchored to "
                "its seed partition of the base database"
            )
        grown = target - len(self._shards)
        if grown > 0:
            self._write_manifest(target, self.seed_shards)
            for i in range(len(self._shards), target):
                base = GraphDatabase(name=f"shard-{i}")
                if self._base_partitions is not None:
                    # A grown shard's WAL anchors to its empty base slice.
                    self._base_partitions.append(base)
                shard = self._make_shard(i, base)
                self._shards.append(shard)
                if self._index_built:
                    if self._host is not None:
                        self._register_shard_worker(shard)
                    else:
                        shard.engine.build_index(
                            store=IndexStore(shard.store_dir)
                            if shard.store_dir is not None else None
                        )
                        shard.summary, shard.summary_source = recover_summary(
                            shard.engine
                        )
        moved = healed = 0
        for shard in list(self._shards):
            for gid in list(shard.engine.db.ids()):
                owner = self.partitioner.owner(gid, target)
                if owner == shard.index:
                    continue
                dest = self._shards[owner]
                if gid in dest.engine.db:
                    # The destination half of an interrupted move already
                    # landed; deleting the stray source copy heals it.
                    self._shard_remove(shard, gid)
                    healed += 1
                    continue
                graph = shard.engine.db[gid]
                self._shard_add(dest, gid, graph)
                self._shard_remove(shard, gid)
                moved += 1
        dropped = 0
        if target < len(self._shards):
            dying = self._shards[target:]
            del self._shards[target:]
            if self._base_partitions is not None:
                del self._base_partitions[target:]
            self._write_manifest(target, self.seed_shards)
            for shard in dying:
                dropped += 1
                if self._host is not None:
                    self._host.stop(shard.index)
                shard.engine.close()
        return {
            "num_shards": len(self._shards),
            "moved": moved,
            "healed": healed,
            "grown": max(0, grown),
            "dropped": dropped,
            "graphs": [len(s.engine.db) for s in self._shards],
        }

    # ------------------------------------------------------------------
    # Maintenance / accounting
    # ------------------------------------------------------------------

    def compact_store(self) -> dict:
        """Compact every shard's journal; returns a merged summary."""
        if self._store_root is None:
            raise ConfigurationError(
                "compact_store requires a sharded engine built with "
                "store_root=..."
            )
        per_shard = []
        for shard in self._shards:
            if self._host is not None:
                state = self._host.compact(shard.index)
                summary = state["result"]
                shard.wal_depth = state["wal_depth"]
                shard.wal_last_seq = state["wal_last_seq"]
                shard.engine.compactions += 1
            else:
                summary = shard.engine.compact_store()
                if shard.summary is not None and shard.engine.store is not None:
                    # Compaction folds the journal; re-stamp the advisory
                    # summary at the folded position so the next warm
                    # start loads it instead of rebuilding.
                    try:
                        shard.engine.store.save_summary(
                            shard.summary.to_dict(),
                            wal_seq=summary["wal_seq"],
                        )
                    except OSError:
                        pass
            per_shard.append({"shard": shard.index, **summary})
        self.compactions += 1
        return {
            "log_depth": sum(row["log_depth"] for row in per_shard),
            "folded": sum(row["folded"] for row in per_shard),
            "compactions": self.compactions,
            "shards": per_shard,
        }

    def executor_stats(self) -> dict:
        return self.executor.worker_stats()

    def store_stats(self) -> dict | None:
        if self._store_root is None:
            return None
        rows = []
        for shard in self._shards:
            row = shard.engine.store_stats()
            if row is None and self._host is not None:
                # Mirror view: the store is open in the worker process.
                row = {
                    "directory": str(shard.store_dir),
                    "wal_depth": shard.wal_depth,
                    "wal_last_seq": shard.wal_last_seq,
                    "compactions": shard.engine.compactions,
                }
                if shard.engine.wal_recovery is not None:
                    row["recovery"] = dict(shard.engine.wal_recovery)
            rows.append({"shard": shard.index, **(row or {})})
        stats: dict = {
            "directory": str(self._store_root),
            "wal_depth": self.store.wal.depth,
            "wal_last_seq": self.store.wal.last_seq,
            "compactions": self.compactions,
            "shards": rows,
        }
        if self.wal_recovery is not None:
            stats["recovery"] = dict(self.wal_recovery)
        return stats

    def shard_stats(self) -> list[dict]:
        """Per-shard health rows for the service's ``stats`` verb."""
        return [
            {
                "shard": shard.index,
                "graphs": len(shard.engine.db),
                "algorithm": shard.engine.name,
                "degraded": shard.engine.degraded,
                "index_source": shard.engine.index_source,
                "breaker": shard.breaker.snapshot(),
                "latency": shard.histogram.summary(),
                "store": (
                    str(shard.store_dir) if shard.store_dir is not None
                    else None
                ),
                "host": (
                    self._host.worker_row(shard.index)
                    if self._host is not None else None
                ),
                "summary": (
                    {
                        "graphs": shard.summary.graphs,
                        "labels": len(shard.summary.label_counts),
                        "pairs": len(shard.summary.pair_counts),
                        "source": shard.summary_source,
                    }
                    if shard.summary is not None else None
                ),
            }
            for shard in self._shards
        ]

    def prune_stats(self) -> dict:
        """Router pruning counters for the service's ``stats`` verb.

        ``shard_queries`` counts every (shard, query) pair the router
        considered; ``shards_pruned`` the pairs it soundly skipped.
        """
        considered, pruned = self.router.prune_counters()
        return {
            "enabled": self.pruning,
            "shard_host": self.shard_host,
            "shard_queries": considered,
            "shards_pruned": pruned,
            "prune_rate": (pruned / considered) if considered else 0.0,
        }

    def index_memory_bytes(self) -> int:
        return sum(s.engine.index_memory_bytes() for s in self._shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._host is not None:
            self._host.close()
        for shard in self._shards:
            shard.engine.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ShardedEngine {self.name!r} shards={len(self._shards)} "
            f"graphs={len(self.db)}>"
        )
