"""The sharded engine: N independent engines behind one engine surface.

:class:`ShardedEngine` partitions one :class:`~repro.graph.database.
GraphDatabase` into ``num_shards`` disjoint partitions (deterministic
placement by graph id through a pluggable :class:`~repro.shard.partition.
Partitioner`) and runs one full :class:`~repro.core.engine.
SubgraphQueryEngine` per partition — its own pipeline and index, its own
:class:`~repro.store.IndexStore` subdirectory and write-ahead mutation
log, its own (optionally supervised) worker pool.  Queries scatter-gather
through the :class:`~repro.shard.router.ShardRouter`; mutations route to
the owning shard only, so journaling, index maintenance, and worker-pool
invalidation all stay scoped to one partition.

The class is surface-compatible with :class:`SubgraphQueryEngine` where
the service and CLI touch it (``query``/``query_many``/``build_index``/
``add_graph``/``remove_graph``/``compact_store``/``stats`` accessors /
``close``), so everything downstream — the NDJSON service, ``bench-serve``,
the CLI verbs — runs unmodified over 1 or N shards.

Durable layout under ``store_root``::

    store_root/
      shards.json        # the manifest: num_shards / seed_shards / partitioner
      shard-00/          # one full IndexStore per shard (snapshots + WAL)
      shard-01/
      ...

**The manifest and the seed invariant.**  ``seed_shards`` records how the
*base* database (the graph file the service was started from) is
partitioned, and never changes: every shard's WAL is anchored to the
fingerprint of its base partition, so re-partitioning the base under a
different count would orphan every journal.  Growing the fleet
(``rebalance(target)``) therefore updates ``num_shards`` only — new
shards start with an empty base partition and receive graphs through
journaled two-phase moves — and shrinking below ``seed_shards`` is
rejected while a store is attached.  A restart must pass the manifest's
``num_shards`` (the CLI surfaces this as a structured configuration
error).

**Rebalance: the crash-safe two-phase move.**  For every graph sitting on
a shard that placement says should live elsewhere: journal + apply the
insertion on the *destination* first, then journal + apply the removal on
the source.  A crash between the phases leaves the graph on both shards —
queries stay correct (the router merges by set union) — and the next
rebalance heals the duplicate by deleting the non-owner copy.  Growth
writes the manifest *before* creating shards (a crash mid-grow restarts
into the larger fleet and re-runs the migration); shrink writes it
*after* the migration (a crash mid-shrink restarts into the old fleet
with some graphs already moved — still correct, still idempotent).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.engine import SubgraphQueryEngine
from repro.graph.database import GraphDatabase
from repro.service.resilience import CircuitBreaker
from repro.shard.partition import Partitioner, create_partitioner
from repro.shard.router import ShardRouter
from repro.store import IndexStore
from repro.utils.errors import ConfigurationError
from repro.utils.fsio import atomic_write_text
from repro.utils.timing import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.metrics import QueryResult
    from repro.core.pipeline import QueryPipeline
    from repro.exec.base import QueryExecutor
    from repro.graph.labeled_graph import Graph

__all__ = ["MANIFEST_NAME", "ShardedEngine"]

#: The manifest file at the root of a sharded store.
MANIFEST_NAME = "shards.json"
MANIFEST_VERSION = 1


@dataclass
class _Shard:
    """One partition: engine + health tracking, owned by the fleet."""

    index: int
    engine: SubgraphQueryEngine
    breaker: CircuitBreaker
    histogram: LatencyHistogram
    store_dir: Path | None = None


class _ShardedDbView:
    """Read-only union view over the shard databases.

    Gives the service and CLI the few ``GraphDatabase`` accessors they
    use (`len`, membership, item lookup, id listing) without ever
    materialising the union.
    """

    def __init__(self, shards: list[_Shard]) -> None:
        self._shards = shards

    def __len__(self) -> int:
        return sum(len(s.engine.db) for s in self._shards)

    def __contains__(self, gid: int) -> bool:
        return any(gid in s.engine.db for s in self._shards)

    def __getitem__(self, gid: int) -> "Graph":
        for shard in self._shards:
            if gid in shard.engine.db:
                return shard.engine.db[gid]
        raise KeyError(f"no graph with id {gid}")

    def __iter__(self):
        return iter(self.ids())

    def ids(self) -> list[int]:
        merged: set[int] = set()
        for shard in self._shards:
            merged.update(shard.engine.db.ids())
        return sorted(merged)

    @property
    def next_id(self) -> int:
        return max(s.engine.db.next_id for s in self._shards)


class ShardedExecutor:
    """Facade over the per-shard executors (stats / invalidate / close).

    Exists so service code that treats ``engine.executor`` as one object
    (the ``stats`` verb names its type; drains close it) works over the
    fleet unchanged.
    """

    def __init__(self, shards: list[_Shard]) -> None:
        self._shards = shards

    def worker_stats(self) -> dict:
        return {
            "executor": "ShardedExecutor",
            "shards": [
                {"shard": s.index, **(s.engine.executor_stats() or {})}
                for s in self._shards
            ],
        }

    def invalidate(self) -> None:
        for shard in self._shards:
            shard.engine.executor.invalidate()

    def close(self) -> None:
        for shard in self._shards:
            shard.engine.executor.close()


class _ShardWalView:
    """Aggregate journal depth, for the service's auto-compact trigger."""

    def __init__(self, shards: list[_Shard]) -> None:
        self._shards = shards

    @property
    def depth(self) -> int:
        return sum(
            s.engine.store.wal.depth
            for s in self._shards
            if s.engine.store is not None
        )

    @property
    def last_seq(self) -> int:
        return max(
            (s.engine.store.wal.last_seq
             for s in self._shards if s.engine.store is not None),
            default=0,
        )


class _ShardStoreView:
    """What ``engine.store`` looks like for a sharded fleet."""

    def __init__(self, root: Path, shards: list[_Shard]) -> None:
        self.directory = root
        self.wal = _ShardWalView(shards)


class ShardedEngine:
    """N per-partition engines behind one engine-compatible surface."""

    def __init__(
        self,
        db: GraphDatabase,
        num_shards: int,
        pipeline_factory: "Callable[[], QueryPipeline]",
        *,
        executor_factory: "Callable[[int], QueryExecutor] | None" = None,
        cache: int = 0,
        plan_cache: int = 256,
        partitioner: "str | Partitioner" = "hash",
        store_root: "str | Path | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        self.partitioner = (
            create_partitioner(partitioner)
            if isinstance(partitioner, str) else partitioner
        )
        self._pipeline_factory = pipeline_factory
        self._executor_factory = executor_factory
        self._cache_capacity = cache
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._store_root = Path(store_root) if store_root is not None else None
        self.seed_shards = self._load_or_create_manifest(num_shards)
        # The base database is always partitioned by ``seed_shards`` —
        # the invariant every shard WAL's base fingerprint depends on.
        partitions = [GraphDatabase(name=f"shard-{i}") for i in range(num_shards)]
        for gid, graph in db.items():
            owner = self.partitioner.owner(gid, self.seed_shards)
            if owner >= num_shards:  # pragma: no cover - guarded by manifest
                raise ConfigurationError(
                    f"graph {gid} belongs to shard {owner} but only "
                    f"{num_shards} shards are configured"
                )
            partitions[owner].add_graph_with_id(gid, graph)
        from repro.matching.plan import PlanCache

        #: One plan cache shared by every shard: plans depend only on the
        #: query graph, so a query planned once is planned for the fleet.
        self.plans = PlanCache(plan_cache) if plan_cache else None
        self._shards: list[_Shard] = [
            self._make_shard(i, partitions[i]) for i in range(num_shards)
        ]
        self.router = ShardRouter(self._shards)
        self.db = _ShardedDbView(self._shards)
        self.executor = ShardedExecutor(self._shards)
        self._index_built = False
        self.indexing_time = 0.0
        self.compactions = 0
        # Aggregates mirroring SubgraphQueryEngine's post-build attributes.
        self.degraded = False
        self.degraded_reason: str | None = None
        self.index_source: str | None = None
        self.store_recovery: str | None = None
        self.store_save_error: str | None = None
        self.wal_recovery: dict | None = None
        self.recovered_request_keys: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _make_shard(self, index: int, db: GraphDatabase) -> _Shard:
        executor = (
            self._executor_factory(index)
            if self._executor_factory is not None else None
        )
        engine = SubgraphQueryEngine(
            db,
            self._pipeline_factory(),
            executor=executor,
            cache=self._cache_capacity,
            plan_cache=0,
        )
        engine.plans = self.plans
        return _Shard(
            index=index,
            engine=engine,
            breaker=CircuitBreaker(
                threshold=self._breaker_threshold,
                cooldown=self._breaker_cooldown,
            ),
            histogram=LatencyHistogram(),
            store_dir=self._shard_dir(index),
        )

    def _shard_dir(self, index: int) -> Path | None:
        if self._store_root is None:
            return None
        return self._store_root / f"shard-{index:02d}"

    def _load_or_create_manifest(self, num_shards: int) -> int:
        """Returns ``seed_shards``; validates or writes the manifest."""
        if self._store_root is None:
            return num_shards
        path = self._store_root / MANIFEST_NAME
        if path.exists():
            try:
                manifest = json.loads(path.read_text())
            except ValueError as exc:
                raise ConfigurationError(
                    f"unreadable shard manifest {path}: {exc}"
                ) from exc
            if manifest.get("version") != MANIFEST_VERSION:
                raise ConfigurationError(
                    f"shard manifest {path} has unsupported version "
                    f"{manifest.get('version')!r}"
                )
            if manifest.get("partitioner") != self.partitioner.name:
                raise ConfigurationError(
                    f"store {self._store_root} was sharded with the "
                    f"{manifest.get('partitioner')!r} partitioner; "
                    f"requested {self.partitioner.name!r}"
                )
            if manifest.get("num_shards") != num_shards:
                raise ConfigurationError(
                    f"store {self._store_root} is sharded "
                    f"{manifest.get('num_shards')} ways; restart with "
                    f"--shards {manifest.get('num_shards')} (or rebalance "
                    "to the new count first)"
                )
            return int(manifest["seed_shards"])
        self._write_manifest(num_shards, num_shards)
        return num_shards

    def _write_manifest(self, num_shards: int, seed_shards: int) -> None:
        if self._store_root is None:
            return
        self._store_root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self._store_root / MANIFEST_NAME,
            json.dumps(
                {
                    "version": MANIFEST_VERSION,
                    "num_shards": num_shards,
                    "seed_shards": seed_shards,
                    "partitioner": self.partitioner.name,
                },
                indent=2,
                sort_keys=True,
            ) + "\n",
        )

    # ------------------------------------------------------------------
    # Engine surface
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shards[0].engine.name

    @property
    def pipeline(self):
        """First shard's pipeline (all shards run identical pipelines);
        gives callers the usual ``engine.pipeline.uses_index`` surface."""
        return self._shards[0].engine.pipeline

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def cache(self):
        """First shard's containment cache (None when caching is off)."""
        return self._shards[0].engine.cache

    @property
    def store(self) -> "_ShardStoreView | None":
        if self._store_root is None:
            return None
        return _ShardStoreView(self._store_root, self._shards)

    def build_index(
        self,
        time_limit: float | None = None,
        fallback: bool = False,
        store: "IndexStore | None" = None,
    ) -> float:
        """Build or warm-start every shard's index **independently**.

        Each shard recovers on its own: a corrupt snapshot or quarantined
        journal on one shard triggers that shard's rebuild without
        touching its siblings.  Per-shard recovery counters are summed
        into ``wal_recovery`` (per-shard rows stay available through
        :meth:`store_stats`).
        """
        if store is not None:
            raise ConfigurationError(
                "a sharded engine manages one store per shard; construct "
                "it with store_root=... instead of passing a store here"
            )
        total = 0.0
        keys: list[tuple[str, str, int]] = []
        recovery_total: dict | None = None
        sources: set[str | None] = set()
        for shard in self._shards:
            shard_store = (
                IndexStore(shard.store_dir) if shard.store_dir is not None
                else None
            )
            total += shard.engine.build_index(
                time_limit, fallback, store=shard_store
            )
            keys.extend(shard.engine.recovered_request_keys)
            sources.add(shard.engine.index_source)
            if shard.engine.degraded and not self.degraded:
                self.degraded = True
                self.degraded_reason = shard.engine.degraded_reason
            if shard.engine.store_recovery and self.store_recovery is None:
                self.store_recovery = shard.engine.store_recovery
            if shard.engine.store_save_error and self.store_save_error is None:
                self.store_save_error = shard.engine.store_save_error
            if shard.engine.wal_recovery is not None:
                if recovery_total is None:
                    recovery_total = {
                        "folded_seq": 0, "log_records": 0, "replayed": 0,
                        "truncated": 0, "reason": None, "quarantined": False,
                    }
                rec = shard.engine.wal_recovery
                recovery_total["folded_seq"] = max(
                    recovery_total["folded_seq"], rec["folded_seq"]
                )
                for key in ("log_records", "replayed", "truncated"):
                    recovery_total[key] += rec[key]
                if rec["reason"] and recovery_total["reason"] is None:
                    recovery_total["reason"] = rec["reason"]
                recovery_total["quarantined"] = (
                    recovery_total["quarantined"] or rec["quarantined"]
                )
        self.wal_recovery = recovery_total
        self.recovered_request_keys = keys
        real_sources = {s for s in sources if s is not None}
        if real_sources:
            self.index_source = (
                real_sources.pop() if len(real_sources) == 1 else "mixed"
            )
        self.indexing_time = total
        self._index_built = True
        return total

    def query(
        self, query: "Graph", time_limit: float | None = None
    ) -> "QueryResult":
        return self.query_many([query], time_limit=time_limit)[0]

    def query_many(
        self, queries: "list[Graph]", time_limit: float | None = None
    ) -> "list[QueryResult]":
        for q in queries:
            if q.num_vertices == 0:
                raise ConfigurationError(
                    "query graph must have at least one vertex"
                )
        if not self._index_built:
            raise ConfigurationError(
                f"{self.name} requires build_index() before querying"
            )
        return self.router.query_many(queries, time_limit=time_limit)

    # ------------------------------------------------------------------
    # Shard-targeted mutations
    # ------------------------------------------------------------------

    @property
    def next_id(self) -> int:
        return self.db.next_id

    def owner_of(self, gid: int) -> int:
        """The shard placement says should hold ``gid`` (current fleet)."""
        return self.partitioner.owner(gid, len(self._shards))

    def add_graph(
        self,
        graph: "Graph",
        store: "IndexStore | None" = None,
        request_key: str | None = None,
    ) -> int:
        """Insert on the owning shard only (journal, index, pool — all
        scoped to that one partition)."""
        if store is not None:
            raise ConfigurationError(
                "sharded mutations journal through per-shard stores"
            )
        gid = self.next_id
        shard = self._shards[self.owner_of(gid)]
        shard.engine.add_graph_with_id(gid, graph, request_key=request_key)
        return gid

    def remove_graph(
        self,
        gid: int,
        store: "IndexStore | None" = None,
        request_key: str | None = None,
    ) -> "Graph":
        """Delete ``gid`` from every shard holding it.

        Normally exactly one shard holds a graph; a crash between the two
        phases of a rebalance move can briefly leave a duplicate, and a
        removal must take *both* copies out or the graph would resurrect.
        Raises :class:`KeyError` when no shard holds ``gid``.
        """
        if store is not None:
            raise ConfigurationError(
                "sharded mutations journal through per-shard stores"
            )
        removed: "Graph | None" = None
        for shard in self._shards:
            if gid in shard.engine.db:
                removed = shard.engine.remove_graph(
                    gid, request_key=request_key
                )
        if removed is None:
            raise KeyError(f"no graph with id {gid}")
        return removed

    # ------------------------------------------------------------------
    # Rebalance (the two-phase move)
    # ------------------------------------------------------------------

    def rebalance(self, target_shards: int | None = None) -> dict:
        """Migrate graphs so every one sits on its owning shard.

        With ``target_shards`` the fleet first grows (new empty shards,
        manifest updated up front) or shrinks (manifest updated after the
        migration; refuses to drop below ``seed_shards`` while a store is
        attached).  Every move is the journaled two-phase protocol from
        the module docstring; duplicates left by an interrupted move are
        healed.  Idempotent: a second call moves nothing.
        """
        target = target_shards if target_shards is not None else len(self._shards)
        if target < 1:
            raise ConfigurationError("target shard count must be at least 1")
        if self._store_root is not None and target < self.seed_shards:
            raise ConfigurationError(
                f"cannot shrink below the seed shard count "
                f"({self.seed_shards}): every shard journal is anchored to "
                "its seed partition of the base database"
            )
        grown = target - len(self._shards)
        if grown > 0:
            self._write_manifest(target, self.seed_shards)
            for i in range(len(self._shards), target):
                shard = self._make_shard(i, GraphDatabase(name=f"shard-{i}"))
                self._shards.append(shard)
                if self._index_built:
                    shard.engine.build_index(
                        store=IndexStore(shard.store_dir)
                        if shard.store_dir is not None else None
                    )
        moved = healed = 0
        for shard in list(self._shards):
            for gid in list(shard.engine.db.ids()):
                owner = self.partitioner.owner(gid, target)
                if owner == shard.index:
                    continue
                dest = self._shards[owner]
                if gid in dest.engine.db:
                    # The destination half of an interrupted move already
                    # landed; deleting the stray source copy heals it.
                    shard.engine.remove_graph(gid)
                    healed += 1
                    continue
                dest.engine.add_graph_with_id(gid, shard.engine.db[gid])
                shard.engine.remove_graph(gid)
                moved += 1
        dropped = 0
        if target < len(self._shards):
            dying = self._shards[target:]
            del self._shards[target:]
            self._write_manifest(target, self.seed_shards)
            for shard in dying:
                dropped += 1
                shard.engine.close()
        return {
            "num_shards": len(self._shards),
            "moved": moved,
            "healed": healed,
            "grown": max(0, grown),
            "dropped": dropped,
            "graphs": [len(s.engine.db) for s in self._shards],
        }

    # ------------------------------------------------------------------
    # Maintenance / accounting
    # ------------------------------------------------------------------

    def compact_store(self) -> dict:
        """Compact every shard's journal; returns a merged summary."""
        if self._store_root is None:
            raise ConfigurationError(
                "compact_store requires a sharded engine built with "
                "store_root=..."
            )
        per_shard = []
        for shard in self._shards:
            summary = shard.engine.compact_store()
            per_shard.append({"shard": shard.index, **summary})
        self.compactions += 1
        return {
            "log_depth": sum(row["log_depth"] for row in per_shard),
            "folded": sum(row["folded"] for row in per_shard),
            "compactions": self.compactions,
            "shards": per_shard,
        }

    def executor_stats(self) -> dict:
        return self.executor.worker_stats()

    def store_stats(self) -> dict | None:
        if self._store_root is None:
            return None
        rows = []
        for shard in self._shards:
            row = shard.engine.store_stats() or {}
            rows.append({"shard": shard.index, **row})
        stats: dict = {
            "directory": str(self._store_root),
            "wal_depth": self.store.wal.depth,
            "wal_last_seq": self.store.wal.last_seq,
            "compactions": self.compactions,
            "shards": rows,
        }
        if self.wal_recovery is not None:
            stats["recovery"] = dict(self.wal_recovery)
        return stats

    def shard_stats(self) -> list[dict]:
        """Per-shard health rows for the service's ``stats`` verb."""
        return [
            {
                "shard": shard.index,
                "graphs": len(shard.engine.db),
                "algorithm": shard.engine.name,
                "degraded": shard.engine.degraded,
                "index_source": shard.engine.index_source,
                "breaker": shard.breaker.snapshot(),
                "latency": shard.histogram.summary(),
                "store": (
                    str(shard.store_dir) if shard.store_dir is not None
                    else None
                ),
            }
            for shard in self._shards
        ]

    def index_memory_bytes(self) -> int:
        return sum(s.engine.index_memory_bytes() for s in self._shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        for shard in self._shards:
            shard.engine.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ShardedEngine {self.name!r} shards={len(self._shards)} "
            f"graphs={len(self.db)}>"
        )
