"""Sharded graph database: partition, route, merge.

The scaling architecture from *Efficient Subgraph Matching on Billion
Node Graphs* applied to the paper's filter-then-verify setting: the
graph database is partitioned across N shards — each a complete
:class:`~repro.core.engine.SubgraphQueryEngine` with its own index
snapshots, write-ahead mutation log, and crash-isolated worker pool —
and every query is scattered to all shards and gathered into one merged
answer set.  See :mod:`repro.shard.engine` for the durability story and
:mod:`repro.shard.router` for the merge and failure semantics.
"""

from repro.shard.engine import MANIFEST_NAME, SHARD_HOSTS, ShardedEngine
from repro.shard.host import ShardProcessHost, ShardWorkerError
from repro.shard.partition import (
    PARTITIONER_NAMES,
    HashPartitioner,
    ModuloPartitioner,
    Partitioner,
    create_partitioner,
)
from repro.shard.router import ShardRouter
from repro.shard.summary import ShardSummary

__all__ = [
    "MANIFEST_NAME",
    "PARTITIONER_NAMES",
    "SHARD_HOSTS",
    "HashPartitioner",
    "ModuloPartitioner",
    "Partitioner",
    "ShardProcessHost",
    "ShardRouter",
    "ShardSummary",
    "ShardWorkerError",
    "ShardedEngine",
    "create_partitioner",
]
