"""Feature extraction for the enumeration-based IFV indices.

Three feature structures appear in the studied algorithms (Table II):

* *label paths* (Grapes, GGSX): the label sequence along a simple path of
  up to ``max_edges`` edges.  An undirected path instance has two
  directions; both sides (indexing and query decomposition) enumerate
  directed paths and fold each into the canonical direction, so occurrence
  counts are comparable and the count-based filter is sound (an embedding
  maps distinct directed paths of q to distinct directed paths of G with
  the same labels).
* *labeled trees* (CT-Index): every connected acyclic edge subgraph of up
  to ``max_edges`` edges, canonicalised by labeled AHU encoding rooted at
  the tree's center(s).
* *labeled cycles* (CT-Index): every simple cycle of up to ``max_length``
  vertices, canonicalised over all rotations and both directions.

All enumerators take an optional :class:`~repro.utils.timing.Deadline` and
an optional feature budget; dense graphs legitimately blow these features
up exponentially, which is exactly the OOT/OOM behaviour the paper reports
for the IFV indices (Tables VI and VIII).
"""

from __future__ import annotations

from repro.graph.algorithms import enumerate_simple_cycles
from repro.graph.labeled_graph import Graph
from repro.utils.errors import MemoryLimitExceeded
from repro.utils.timing import Deadline

__all__ = [
    "canonical_cycle",
    "canonical_path",
    "canonical_tree",
    "canonical_tree_from_adjacency",
    "enumerate_cycle_features",
    "enumerate_path_features",
    "enumerate_tree_features",
]

LabelSeq = tuple[int, ...]


def canonical_path(labels: LabelSeq) -> LabelSeq:
    """Direction-independent key for a path label sequence."""
    reverse = labels[::-1]
    return labels if labels <= reverse else reverse


def enumerate_path_features(
    graph: Graph,
    max_edges: int,
    deadline: Deadline | None = None,
    max_features: int | None = None,
    with_locations: bool = False,
) -> tuple[dict[LabelSeq, int], dict[LabelSeq, set[int]] | None]:
    """Count every simple-path label sequence with up to ``max_edges`` edges.

    Returns ``(counts, locations)`` where ``counts`` maps canonical label
    sequences to the number of directed path instances, and ``locations``
    (if requested) maps each feature to the set of start vertices of its
    instances — the per-feature occurrence locations Grapes stores.

    Raises :class:`MemoryLimitExceeded` when more than ``max_features``
    distinct features appear.
    """
    counts: dict[LabelSeq, int] = {}
    locations: dict[LabelSeq, set[int]] | None = {} if with_locations else None

    def record(seq: LabelSeq, start: int) -> None:
        key = canonical_path(seq)
        counts[key] = counts.get(key, 0) + 1
        if locations is not None:
            locations.setdefault(key, set()).add(start)
        if max_features is not None and len(counts) > max_features:
            raise MemoryLimitExceeded(
                f"path feature budget of {max_features} exceeded"
            )

    on_path = [False] * graph.num_vertices
    path_labels: list[int] = []

    def extend(start: int, current: int, edges_used: int) -> None:
        if deadline is not None:
            deadline.check()
        record(tuple(path_labels), start)
        if edges_used == max_edges:
            return
        for nxt in graph.neighbors(current):
            if not on_path[nxt]:
                on_path[nxt] = True
                path_labels.append(graph.label(nxt))
                extend(start, nxt, edges_used + 1)
                path_labels.pop()
                on_path[nxt] = False

    for v in graph.vertices():
        on_path[v] = True
        path_labels.append(graph.label(v))
        extend(v, v, 0)
        path_labels.pop()
        on_path[v] = False
    return counts, locations


# ----------------------------------------------------------------------
# Labeled trees (CT-Index)
# ----------------------------------------------------------------------


def _tree_centers(vertices: list[int], adjacency: dict[int, set[int]]) -> list[int]:
    """Center(s) of a tree given as vertex list + adjacency (1 or 2)."""
    if len(vertices) <= 2:
        return list(vertices)
    degree = {v: len(adjacency[v]) for v in vertices}
    removed: set[int] = set()
    leaves = [v for v in vertices if degree[v] <= 1]
    remaining = len(vertices)
    while remaining > 2:
        remaining -= len(leaves)
        next_leaves = []
        for leaf in leaves:
            removed.add(leaf)
            for nbr in adjacency[leaf]:
                if nbr in removed:
                    continue
                degree[nbr] -= 1
                if degree[nbr] == 1:
                    next_leaves.append(nbr)
        leaves = next_leaves
    return [v for v in vertices if v not in removed]


def canonical_tree_from_adjacency(
    adjacency: dict[int, set[int]], labels: dict[int, int]
) -> str:
    """Canonical string of a labeled free tree given raw adjacency.

    Labeled AHU encoding rooted at the tree center; bicentral trees take
    the lexicographically smaller of the two center rootings.
    """
    vertices = list(adjacency)

    def encode(v: int, parent: int | None) -> str:
        children = sorted(
            encode(w, v) for w in adjacency[v] if w != parent
        )
        return f"{labels[v]}({''.join(children)})"

    return min(encode(c, None) for c in _tree_centers(vertices, adjacency))


def canonical_tree(
    graph: Graph, edges: frozenset[tuple[int, int]]
) -> str:
    """Canonical string of the labeled tree formed by ``edges``.

    Single vertices are not representable here (pass edge sets only).
    """
    adjacency: dict[int, set[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    labels = {v: graph.label(v) for v in adjacency}
    return canonical_tree_from_adjacency(adjacency, labels)


def enumerate_tree_features(
    graph: Graph,
    max_edges: int,
    deadline: Deadline | None = None,
    max_features: int | None = None,
) -> dict[str, int]:
    """Count every labeled subtree with 1..``max_edges`` edges.

    Enumerates connected acyclic edge subsets: every subtree of size k is a
    subtree of size k-1 plus a leaf edge, so staying inside tree-space is
    complete.  Duplicates from different growth orders are folded by a
    per-graph seen-set of edge subsets.  Single-vertex features are
    deliberately excluded (CT-Index fingerprints vertices via its label
    histogram elsewhere; a lone label has no filtering power beyond the
    paths/trees that contain it).
    """
    edge_list = list(graph.edges())
    counts: dict[str, int] = {}
    seen: set[frozenset[tuple[int, int]]] = set()

    def record(edge_set: frozenset[tuple[int, int]]) -> None:
        key = canonical_tree(graph, edge_set)
        counts[key] = counts.get(key, 0) + 1
        if max_features is not None and len(counts) > max_features:
            raise MemoryLimitExceeded(
                f"tree feature budget of {max_features} exceeded"
            )

    def grow(edge_set: frozenset[tuple[int, int]], vertex_set: set[int]) -> None:
        if deadline is not None:
            deadline.check()
        record(edge_set)
        if len(edge_set) == max_edges:
            return
        for u in vertex_set:
            for w in graph.neighbors(u):
                if w in vertex_set:
                    continue  # would close a cycle or re-add an edge
                edge = (u, w) if u < w else (w, u)
                grown = edge_set | {edge}
                if grown in seen:
                    continue
                seen.add(grown)
                vertex_set.add(w)
                grow(grown, vertex_set)
                vertex_set.discard(w)

    for u, v in edge_list:
        base = frozenset([(u, v)])
        if base not in seen:
            seen.add(base)
            grow(base, {u, v})
    return counts


# ----------------------------------------------------------------------
# Labeled cycles (CT-Index)
# ----------------------------------------------------------------------


def canonical_cycle(labels: LabelSeq) -> LabelSeq:
    """Rotation- and direction-independent key for a cycle label sequence."""
    n = len(labels)
    best: LabelSeq | None = None
    for seq in (labels, labels[::-1]):
        for shift in range(n):
            rotated = seq[shift:] + seq[:shift]
            if best is None or rotated < best:
                best = rotated
    assert best is not None
    return best


def enumerate_cycle_features(
    graph: Graph,
    max_length: int,
    deadline: Deadline | None = None,
    max_features: int | None = None,
) -> dict[LabelSeq, int]:
    """Count every simple-cycle label sequence with up to ``max_length``
    vertices."""
    counts: dict[LabelSeq, int] = {}
    for cycle in enumerate_simple_cycles(graph, max_length):
        if deadline is not None:
            deadline.check()
        key = canonical_cycle(tuple(graph.label(v) for v in cycle))
        counts[key] = counts.get(key, 0) + 1
        if max_features is not None and len(counts) > max_features:
            raise MemoryLimitExceeded(
                f"cycle feature budget of {max_features} exceeded"
            )
    return counts
