"""The Grapes index (Giugno et al., PLoS ONE 2013).

Enumeration-based path index stored in a trie (Section III-A "Grapes"):
every simple-path label sequence of up to ``max_path_edges`` edges is
counted per data graph, together with its occurrence start locations.
Filtering decomposes the query with the same enumerator and keeps the data
graphs whose occurrence count dominates the query's for *every* feature —
the count comparison is what makes Grapes filter more precisely than
GGSX's boolean containment.

The original runs verification on 6 threads; parallelism is a constant
factor and is intentionally out of scope here (see DESIGN.md).
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.index.base import GraphIndex
from repro.index.features import enumerate_path_features
from repro.index.trie import PathTrie
from repro.utils.errors import MemoryLimitExceeded
from repro.utils.timing import Deadline

__all__ = ["GrapesIndex"]


class GrapesIndex(GraphIndex):
    """Trie-backed path-count index with occurrence locations.

    Two memory budgets reproduce the paper's OOM entries:
    ``max_features_per_graph`` bounds the feature enumeration of a single
    graph, and ``max_trie_nodes`` bounds the whole trie (the retained
    structure), mirroring GGSX's suffix-trie node budget.
    """

    name = "Grapes"

    def __init__(
        self,
        max_path_edges: int = 4,
        with_locations: bool = True,
        max_features_per_graph: int | None = None,
        max_trie_nodes: int | None = None,
    ) -> None:
        if max_path_edges < 1:
            raise ValueError("max_path_edges must be at least 1")
        self.max_path_edges = max_path_edges
        self.with_locations = with_locations
        self.max_features_per_graph = max_features_per_graph
        self.max_trie_nodes = max_trie_nodes
        self._trie = PathTrie(with_locations=with_locations)
        self._ids: set[int] = set()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add_graph(
        self, graph_id: int, graph: Graph, deadline: Deadline | None = None
    ) -> None:
        if graph_id in self._ids:
            raise ValueError(f"graph id {graph_id} already indexed")
        counts, locations = enumerate_path_features(
            graph,
            self.max_path_edges,
            deadline=deadline,
            max_features=self.max_features_per_graph,
            with_locations=self.with_locations,
        )
        for feature, count in counts.items():
            self._trie.insert(
                feature,
                graph_id,
                count,
                locations[feature] if locations is not None else None,
            )
            if (
                self.max_trie_nodes is not None
                and self._trie.num_nodes > self.max_trie_nodes
            ):
                raise MemoryLimitExceeded(
                    f"path trie node budget of {self.max_trie_nodes} exceeded"
                )
        self._ids.add(graph_id)

    def remove_graph(self, graph_id: int) -> None:
        if graph_id not in self._ids:
            raise KeyError(f"graph id {graph_id} is not indexed")
        self._trie.remove_graph(graph_id)
        self._ids.discard(graph_id)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def candidates(self, query: Graph, deadline: Deadline | None = None) -> set[int]:
        feature_counts, _ = enumerate_path_features(
            query, self.max_path_edges, deadline=deadline
        )
        survivors = set(self._ids)
        # Most selective features first: fewer graphs contain them, so the
        # intersection shrinks fastest.
        nodes = []
        for feature, needed in feature_counts.items():
            node = self._trie.find(feature)
            if node is None:
                return set()
            nodes.append((len(node.counts), needed, node))
        nodes.sort(key=lambda item: item[0])
        for _, needed, node in nodes:
            if deadline is not None:
                deadline.check()
            survivors &= {gid for gid, c in node.counts.items() if c >= needed}
            if not survivors:
                return set()
        return survivors

    def occurrence_locations(self, query: Graph, graph_id: int) -> set[int] | None:
        """Union of occurrence start vertices of the query's features in
        one data graph — what Grapes uses to localise verification.
        Returns ``None`` when the index was built without locations."""
        if not self.with_locations:
            return None
        feature_counts, _ = enumerate_path_features(query, self.max_path_edges)
        union: set[int] = set()
        for feature in feature_counts:
            node = self._trie.find(feature)
            if node is not None and node.locations is not None:
                union.update(node.locations.get(graph_id, ()))
        return union

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def indexed_ids(self) -> set[int]:
        return set(self._ids)

    @property
    def num_trie_nodes(self) -> int:
        return self._trie.num_nodes
