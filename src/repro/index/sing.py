"""SING (Di Natale et al., BMC Bioinformatics 2010).

The remaining enumeration-based path index of the paper's Table II.
SING's distinctive idea is *locational* filtering: the index maps each
path feature not just to the graphs containing it, but to the **starting
vertices** of its occurrences.  At query time, every query vertex ``u``
collects the features of the paths rooted at it; a data graph survives
only if, for every query vertex, some data vertex starts occurrences of
*all* of those features — a per-vertex filter, conceptually halfway
between the graph-level IFV filters and the vertex-connectivity filter of
the vcFV algorithms.

Soundness: an embedding φ maps every directed path rooted at ``u`` to a
directed path rooted at ``φ(u)`` with the same label sequence, so
``φ(u)`` lies in the intersection of the feature location sets — which is
therefore non-empty whenever the graph contains the query.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.index.base import GraphIndex
from repro.utils.errors import MemoryLimitExceeded
from repro.utils.timing import Deadline

__all__ = ["SINGIndex"]

LabelSeq = tuple[int, ...]


def enumerate_rooted_paths(
    graph: Graph,
    max_edges: int,
    deadline: Deadline | None = None,
    max_features: int | None = None,
) -> dict[LabelSeq, set[int]]:
    """Map each *directed* path label sequence to its start vertices.

    Unlike :func:`~repro.index.features.enumerate_path_features`, no
    direction canonicalisation happens: SING's per-vertex semantics need
    the sequence as seen from the start vertex.
    """
    locations: dict[LabelSeq, set[int]] = {}
    on_path = [False] * graph.num_vertices
    labels: list[int] = []

    def record(start: int) -> None:
        key = tuple(labels)
        locations.setdefault(key, set()).add(start)
        if max_features is not None and len(locations) > max_features:
            raise MemoryLimitExceeded(
                f"rooted-path feature budget of {max_features} exceeded"
            )

    def extend(start: int, current: int, edges_used: int) -> None:
        if deadline is not None:
            deadline.check()
        record(start)
        if edges_used == max_edges:
            return
        for nxt in graph.neighbors(current):
            if not on_path[nxt]:
                on_path[nxt] = True
                labels.append(graph.label(nxt))
                extend(start, nxt, edges_used + 1)
                labels.pop()
                on_path[nxt] = False

    for v in graph.vertices():
        on_path[v] = True
        labels.append(graph.label(v))
        extend(v, v, 0)
        labels.pop()
        on_path[v] = False
    return locations


class SINGIndex(GraphIndex):
    """Path index with per-feature start-vertex locations."""

    name = "SING"

    def __init__(
        self,
        max_path_edges: int = 4,
        max_features_per_graph: int | None = None,
    ) -> None:
        if max_path_edges < 1:
            raise ValueError("max_path_edges must be at least 1")
        self.max_path_edges = max_path_edges
        self.max_features_per_graph = max_features_per_graph
        #: graph id → {feature → start-vertex set}.
        self._locations: dict[int, dict[LabelSeq, set[int]]] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add_graph(
        self, graph_id: int, graph: Graph, deadline: Deadline | None = None
    ) -> None:
        if graph_id in self._locations:
            raise ValueError(f"graph id {graph_id} already indexed")
        self._locations[graph_id] = enumerate_rooted_paths(
            graph,
            self.max_path_edges,
            deadline=deadline,
            max_features=self.max_features_per_graph,
        )

    def remove_graph(self, graph_id: int) -> None:
        if graph_id not in self._locations:
            raise KeyError(f"graph id {graph_id} is not indexed")
        del self._locations[graph_id]

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def candidates(self, query: Graph, deadline: Deadline | None = None) -> set[int]:
        query_rooted = enumerate_rooted_paths(
            query, self.max_path_edges, deadline=deadline
        )
        # Regroup: query vertex → the features rooted at it.
        per_vertex: dict[int, list[LabelSeq]] = {u: [] for u in query.vertices()}
        for feature, starts in query_rooted.items():
            for u in starts:
                per_vertex[u].append(feature)
        survivors: set[int] = set()
        for gid, table in self._locations.items():
            if deadline is not None:
                deadline.check()
            if self._graph_passes(per_vertex, table):
                survivors.add(gid)
        return survivors

    @staticmethod
    def _graph_passes(
        per_vertex: dict[int, list[LabelSeq]],
        table: dict[LabelSeq, set[int]],
    ) -> bool:
        """Every query vertex needs a data vertex starting all of its
        rooted features."""
        for features in per_vertex.values():
            candidates: set[int] | None = None
            for feature in sorted(features, key=lambda f: len(table.get(f, ()))):
                starts = table.get(feature)
                if not starts:
                    return False
                candidates = (
                    set(starts) if candidates is None else candidates & starts
                )
                if not candidates:
                    return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def indexed_ids(self) -> set[int]:
        return set(self._locations)

    def vertex_candidates(self, query: Graph, graph_id: int) -> list[set[int]]:
        """Per-query-vertex candidate start vertices in one data graph —
        SING's locational information exposed for verification seeding
        (a complete candidate vertex set in the Definition III.1 sense)."""
        table = self._locations[graph_id]
        query_rooted = enumerate_rooted_paths(query, self.max_path_edges)
        result: list[set[int] | None] = [None] * query.num_vertices
        for feature, starts in query_rooted.items():
            found = table.get(feature, set())
            for u in starts:
                result[u] = set(found) if result[u] is None else result[u] & found
        return [s if s is not None else set() for s in result]
