"""The path trie backing the Grapes index.

Grapes stores its enumerated label paths in a trie (Section III-A): each
node corresponds to a label sequence; the payload at a node records, per
data graph, how many path instances realise that sequence and (optionally)
the set of start vertices — the occurrence locations Grapes keeps for
localising verification.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["PathTrie", "TrieNode"]

LabelSeq = tuple[int, ...]


class TrieNode:
    """One trie node: children by label, plus per-graph payload."""

    __slots__ = ("children", "counts", "locations")

    def __init__(self) -> None:
        self.children: dict[int, TrieNode] = {}
        self.counts: dict[int, int] = {}
        self.locations: dict[int, set[int]] | None = None


class PathTrie:
    """Trie from label sequences to per-graph occurrence data."""

    def __init__(self, with_locations: bool = False) -> None:
        self.root = TrieNode()
        self.with_locations = with_locations
        self._num_nodes = 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self,
        sequence: LabelSeq,
        graph_id: int,
        count: int,
        locations: set[int] | None = None,
    ) -> None:
        """Record ``count`` occurrences of ``sequence`` in ``graph_id``."""
        node = self.root
        for label in sequence:
            child = node.children.get(label)
            if child is None:
                child = TrieNode()
                node.children[label] = child
                self._num_nodes += 1
            node = child
        node.counts[graph_id] = node.counts.get(graph_id, 0) + count
        if self.with_locations and locations is not None:
            if node.locations is None:
                node.locations = {}
            node.locations.setdefault(graph_id, set()).update(locations)

    def remove_graph(self, graph_id: int) -> None:
        """Erase every trace of ``graph_id`` (full walk; O(trie size)).

        Subtrees left with no payload and no descendants are pruned, so
        a long-lived dynamic database (many adds and removes) does not
        accumulate dead nodes for label paths no surviving graph has.
        """

        def scrub(node: TrieNode) -> bool:
            """Post-order scrub; True when ``node`` can be dropped."""
            node.counts.pop(graph_id, None)
            if node.locations is not None:
                node.locations.pop(graph_id, None)
                if not node.locations:
                    node.locations = None
            dead = [
                label
                for label, child in node.children.items()
                if scrub(child)
            ]
            for label in dead:
                del node.children[label]
                self._num_nodes -= 1
            return not node.children and not node.counts

        scrub(self.root)  # the root itself is never dropped

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def find(self, sequence: LabelSeq) -> TrieNode | None:
        node = self.root
        for label in sequence:
            node = node.children.get(label)
            if node is None:
                return None
        return node

    def graphs_with_count(self, sequence: LabelSeq, minimum: int) -> set[int]:
        """Graph ids with at least ``minimum`` occurrences of the feature."""
        node = self.find(sequence)
        if node is None:
            return set()
        return {gid for gid, c in node.counts.items() if c >= minimum}

    def graph_count(self, sequence: LabelSeq, graph_id: int) -> int:
        node = self.find(sequence)
        if node is None:
            return 0
        return node.counts.get(graph_id, 0)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_state(self) -> list:
        """JSON-compatible nested dump of the whole trie.

        Each node is ``[counts, locations, children]`` with string keys
        (JSON objects cannot have int keys); ``locations`` is ``None``
        when the trie does not keep them.  Depth is bounded by the path
        length, so recursion is safe.
        """

        def encode(node: TrieNode) -> list:
            return [
                {str(gid): c for gid, c in node.counts.items()},
                None
                if node.locations is None
                else {str(gid): sorted(locs) for gid, locs in node.locations.items()},
                {str(label): encode(child) for label, child in node.children.items()},
            ]

        return encode(self.root)

    @classmethod
    def from_state(cls, state: list, with_locations: bool = False) -> "PathTrie":
        """Rebuild a trie from :meth:`to_state` output (inverse bijection)."""
        trie = cls(with_locations=with_locations)

        def decode(encoded: list) -> TrieNode:
            counts, locations, children = encoded
            node = TrieNode()
            node.counts = {int(gid): int(c) for gid, c in counts.items()}
            if locations is not None:
                node.locations = {
                    int(gid): set(map(int, locs)) for gid, locs in locations.items()
                }
            for label, child in children.items():
                node.children[int(label)] = decode(child)
                trie._num_nodes += 1
            return node

        trie.root = decode(state)
        return trie

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _walk(self) -> Iterator[TrieNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def num_entries(self) -> int:
        """Total (node, graph) payload entries — the memory driver."""
        return sum(len(node.counts) for node in self._walk())
