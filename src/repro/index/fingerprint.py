"""Fixed-width bit fingerprints (CT-Index's index representation).

CT-Index hashes every enumerated tree/cycle feature into a fixed-width bit
vector (the paper configures 4096 bits) and keeps one fingerprint per data
graph.  Filtering is a subset test: a data graph survives iff every bit set
in the query's fingerprint is set in the graph's.  The subset test is
sound because feature containment implies bit containment; hash collisions
can only make the filter *weaker* (extra candidates), never unsound.

Fingerprints are plain Python ints used as bitmasks — arbitrary precision,
O(words) bitwise ops, and hashable.
"""

from __future__ import annotations

import hashlib

__all__ = ["FingerprintHasher"]


class FingerprintHasher:
    """Hashes feature keys into ``num_bits``-wide bitmask fingerprints."""

    def __init__(self, num_bits: int = 4096, num_hashes: int = 1) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes

    def feature_mask(self, feature_key: object) -> int:
        """Bitmask with the ``num_hashes`` positions of one feature set."""
        mask = 0
        text = repr(feature_key).encode("utf-8")
        for salt in range(self.num_hashes):
            digest = hashlib.blake2b(text, digest_size=8, salt=bytes([salt])).digest()
            mask |= 1 << (int.from_bytes(digest, "big") % self.num_bits)
        return mask

    def fingerprint(self, feature_keys: object) -> int:
        """OR of the feature masks of an iterable of feature keys."""
        fp = 0
        for key in feature_keys:
            fp |= self.feature_mask(key)
        return fp

    @staticmethod
    def covers(graph_fp: int, query_fp: int) -> bool:
        """Whether every query bit is present in the graph fingerprint."""
        return query_fp & ~graph_fp == 0

    def memory_bytes(self) -> int:
        """Bytes one stored fingerprint accounts for (bit width only)."""
        return self.num_bits // 8
