"""Mining-based tree index (the TreePi / SwiftIndex family of Table II).

The paper's Table II splits the IFV algorithms into enumeration-based and
*mining-based* methods.  Mining-based indices keep only the "frequent" and
"discriminative" features (Section II-B1):

* a tree feature is **frequent** when its *support ratio* — the fraction
  of data graphs containing it — is at least ``min_support``;
* a frequent feature is **discriminative** when its posting list is
  sufficiently smaller than the intersection of the posting lists of its
  *parent* features (the trees obtained by deleting one leaf), controlled
  by ``discriminative_ratio`` γ: the feature is kept only if
  ``|∩ parents' postings| ≥ γ · |postings|``.

Both thresholds trade index size for filtering power, and the mining pass
over the feature lattice is exactly why the paper reports that
"mining-based methods consume too much time to build indices".

Query processing uses only the indexed features found in the query
(skipping an absent feature is sound: absence from the index means
*infrequent*, not *nowhere*), intersecting boolean posting lists.

The feature lattice is navigated through the canonical tree encodings:
:func:`parse_tree_encoding` rebuilds a tree from its canonical string and
:func:`tree_parent_features` canonicalises each leaf deletion.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.index.base import GraphIndex
from repro.index.features import (
    canonical_tree_from_adjacency,
    enumerate_tree_features,
)
from repro.utils.errors import GraphFormatError
from repro.utils.timing import Deadline

__all__ = [
    "MiningTreeIndex",
    "parse_tree_encoding",
    "tree_parent_features",
]


def parse_tree_encoding(encoding: str) -> tuple[dict[int, set[int]], dict[int, int]]:
    """Rebuild ``(adjacency, labels)`` from a canonical tree string.

    The grammar is ``tree := label '(' tree* ')'`` with integer labels —
    exactly what :func:`canonical_tree_from_adjacency` emits.  Vertex ids
    are assigned in pre-order.
    """
    adjacency: dict[int, set[int]] = {}
    labels: dict[int, int] = {}
    pos = 0

    def parse(parent: int | None) -> None:
        nonlocal pos
        start = pos
        while pos < len(encoding) and encoding[pos] not in "()":
            pos += 1
        if pos >= len(encoding) or encoding[pos] != "(":
            raise GraphFormatError(f"malformed tree encoding {encoding!r}")
        label = int(encoding[start:pos])
        vertex = len(labels)
        labels[vertex] = label
        adjacency[vertex] = set()
        if parent is not None:
            adjacency[vertex].add(parent)
            adjacency[parent].add(vertex)
        pos += 1  # consume '('
        while pos < len(encoding) and encoding[pos] != ")":
            parse(vertex)
        if pos >= len(encoding):
            raise GraphFormatError(f"unbalanced tree encoding {encoding!r}")
        pos += 1  # consume ')'

    parse(None)
    if pos != len(encoding):
        raise GraphFormatError(f"trailing characters in tree encoding {encoding!r}")
    return adjacency, labels


def tree_parent_features(encoding: str) -> set[str]:
    """Canonical encodings of every single-leaf deletion of a tree.

    A tree with one edge has single vertices as "parents", which this
    index does not store, so the result is empty for it.
    """
    adjacency, labels = parse_tree_encoding(encoding)
    if len(adjacency) <= 2:
        return set()
    parents: set[str] = set()
    for vertex, nbrs in adjacency.items():
        if len(nbrs) != 1:
            continue  # not a leaf
        reduced_adj = {
            v: {w for w in ws if w != vertex}
            for v, ws in adjacency.items()
            if v != vertex
        }
        reduced_labels = {v: lab for v, lab in labels.items() if v != vertex}
        parents.add(canonical_tree_from_adjacency(reduced_adj, reduced_labels))
    return parents


class MiningTreeIndex(GraphIndex):
    """Frequent-and-discriminative tree index (mining-based IFV).

    Unlike the enumeration-based indices, mining happens over the whole
    database at once, so the index must be (re)built with :meth:`build`;
    incremental ``add_graph`` records the graph's features and re-mines,
    which is the maintenance cost the paper attributes to this family.
    """

    name = "TreePi"

    def __init__(
        self,
        max_tree_edges: int = 3,
        min_support: float = 0.1,
        discriminative_ratio: float = 1.5,
        max_features_per_graph: int | None = None,
    ) -> None:
        if not 0.0 <= min_support <= 1.0:
            raise ValueError("min_support must be in [0, 1]")
        if discriminative_ratio < 1.0:
            raise ValueError("discriminative_ratio must be >= 1")
        self.max_tree_edges = max_tree_edges
        self.min_support = min_support
        self.discriminative_ratio = discriminative_ratio
        self.max_features_per_graph = max_features_per_graph
        #: All enumerated features per graph (the mining input).
        self._graph_features: dict[int, set[str]] = {}
        #: Mined index: feature → posting set of graph ids.
        self._postings: dict[str, set[int]] = {}
        #: Feature size in edges, for lattice-level ordering.
        self._feature_size: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------

    def _mine(self) -> None:
        """Select frequent, discriminative features from the recorded
        per-graph feature sets."""
        num_graphs = len(self._graph_features)
        self._postings = {}
        self._feature_size = {}
        if num_graphs == 0:
            return
        all_postings: dict[str, set[int]] = {}
        for gid, features in self._graph_features.items():
            for feature in features:
                all_postings.setdefault(feature, set()).add(gid)
        threshold = self.min_support * num_graphs
        frequent = {
            feature: gids
            for feature, gids in all_postings.items()
            if len(gids) >= threshold
        }
        # Lattice pass, small features first, so ancestors are decided
        # before their descendants consult them.
        by_size = sorted(frequent, key=lambda f: f.count("("))
        kept: dict[str, set[int]] = {}

        def kept_ancestors(feature: str) -> set[str]:
            """Nearest kept ancestors, walking through pruned parents."""
            result: set[str] = set()
            frontier = tree_parent_features(feature)
            seen: set[str] = set()
            while frontier:
                next_frontier: set[str] = set()
                for parent in frontier:
                    if parent in seen:
                        continue
                    seen.add(parent)
                    if parent in kept:
                        result.add(parent)
                    else:
                        next_frontier |= tree_parent_features(parent)
                frontier = next_frontier
            return result

        for feature in by_size:
            postings = frequent[feature]
            ancestors = kept_ancestors(feature)
            if ancestors:
                upper = set.intersection(*(kept[a] for a in ancestors))
                if len(upper) < self.discriminative_ratio * len(postings):
                    continue  # adds too little beyond its ancestors
            kept[feature] = postings
        self._postings = kept
        self._feature_size = {f: f.count("(") - 1 for f in kept}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add_graph(
        self, graph_id: int, graph: Graph, deadline: Deadline | None = None
    ) -> None:
        if graph_id in self._graph_features:
            raise ValueError(f"graph id {graph_id} already indexed")
        counts = enumerate_tree_features(
            graph,
            self.max_tree_edges,
            deadline=deadline,
            max_features=self.max_features_per_graph,
        )
        self._graph_features[graph_id] = set(counts)
        self._mine()

    def remove_graph(self, graph_id: int) -> None:
        if graph_id not in self._graph_features:
            raise KeyError(f"graph id {graph_id} is not indexed")
        del self._graph_features[graph_id]
        self._mine()

    def build(self, db, deadline: Deadline | None = None) -> None:
        """Index a whole database with a single mining pass at the end."""
        for gid, graph in db.items():
            if gid in self._graph_features:
                raise ValueError(f"graph id {gid} already indexed")
            counts = enumerate_tree_features(
                graph,
                self.max_tree_edges,
                deadline=deadline,
                max_features=self.max_features_per_graph,
            )
            self._graph_features[gid] = set(counts)
        self._mine()

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def candidates(self, query: Graph, deadline: Deadline | None = None) -> set[int]:
        survivors = set(self._graph_features)
        query_features = enumerate_tree_features(
            query, self.max_tree_edges, deadline=deadline
        )
        hits = [
            self._postings[feature]
            for feature in query_features
            if feature in self._postings
        ]
        for postings in sorted(hits, key=len):
            survivors &= postings
            if not survivors:
                return set()
        return survivors

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def indexed_ids(self) -> set[int]:
        return set(self._graph_features)

    @property
    def num_indexed_features(self) -> int:
        return len(self._postings)

    def selectivity_profile(self) -> dict[int, int]:
        """Indexed feature counts by tree size (edges) — the mined
        lattice's shape, useful for tuning the thresholds."""
        profile: dict[int, int] = {}
        for size in self._feature_size.values():
            profile[size] = profile.get(size, 0) + 1
        return profile
