"""The graph index interface shared by the three IFV systems.

An index supports incremental maintenance (``add_graph`` / ``remove_graph``
— the update cost the paper's introduction holds against IFV methods) and
query-time filtering (``candidates``).  ``build`` indexes a whole database
under an optional deadline, which is how the benchmark harness reproduces
the paper's out-of-time entries for index construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.utils.memory import deep_size_of
from repro.utils.timing import Deadline

__all__ = ["GraphIndex"]


class GraphIndex(ABC):
    """Feature index over a graph database (the I of IFV)."""

    #: Human-readable index name, used in reports.
    name: str = "index"

    @abstractmethod
    def add_graph(self, graph_id: int, graph: Graph, deadline: Deadline | None = None) -> None:
        """Index one data graph under ``graph_id``."""

    @abstractmethod
    def remove_graph(self, graph_id: int) -> None:
        """Drop ``graph_id`` from the index."""

    @abstractmethod
    def candidates(self, query: Graph, deadline: Deadline | None = None) -> set[int]:
        """Graph ids whose graphs may contain ``query`` (superset of the
        answer set — index filters must never drop a true answer)."""

    @property
    @abstractmethod
    def indexed_ids(self) -> set[int]:
        """Ids currently present in the index."""

    def build(self, db: GraphDatabase, deadline: Deadline | None = None) -> None:
        """Index every graph of ``db`` (raises on deadline expiry)."""
        for gid, graph in db.items():
            self.add_graph(gid, graph, deadline=deadline)

    def memory_bytes(self) -> int:
        """Retained size of the index structures (Tables VII / IX)."""
        return deep_size_of(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} graphs={len(self.indexed_ids)}>"
