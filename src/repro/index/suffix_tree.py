"""The suffix trie backing the GGSX index.

GGSX (GraphGrepSX) enumerates, from every vertex, the depth-bounded DFS
paths that are *maximal* (cannot be extended without repeating a vertex, or
have reached the length bound) and stores them in a suffix tree: inserting
every suffix of every maximal path means any subpath of any bounded-length
path in the graph can be located as a root-anchored prefix.  Each node
visited during an insertion is marked with the graph id, so membership of
any ≤-bound path is a single root-to-node walk.

Compared with Grapes' count trie this structure answers *boolean*
containment per feature, which is what gives GGSX its weaker filtering
precision in the paper's Figures 2 and 8.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["SuffixTrie", "SuffixTrieNode"]

LabelSeq = tuple[int, ...]


class SuffixTrieNode:
    """One suffix-trie node: children by label + graph-id marks."""

    __slots__ = ("children", "graph_ids")

    def __init__(self) -> None:
        self.children: dict[int, SuffixTrieNode] = {}
        self.graph_ids: set[int] = set()


class SuffixTrie:
    """Suffix trie over label sequences with per-node graph-id marks."""

    def __init__(self) -> None:
        self.root = SuffixTrieNode()
        self._num_nodes = 1

    def insert_with_suffixes(self, sequence: LabelSeq, graph_id: int) -> None:
        """Insert ``sequence`` and all of its suffixes for ``graph_id``."""
        for start in range(len(sequence)):
            self._insert(sequence[start:], graph_id)

    def _insert(self, sequence: LabelSeq, graph_id: int) -> None:
        node = self.root
        for label in sequence:
            child = node.children.get(label)
            if child is None:
                child = SuffixTrieNode()
                node.children[label] = child
                self._num_nodes += 1
            node = child
            node.graph_ids.add(graph_id)

    def remove_graph(self, graph_id: int) -> None:
        """Erase ``graph_id`` from every node (full walk)."""
        for node in self._walk():
            node.graph_ids.discard(graph_id)

    def graphs_containing(self, sequence: LabelSeq) -> set[int]:
        """Graph ids in which ``sequence`` occurs as a path label sequence."""
        node = self.root
        for label in sequence:
            node = node.children.get(label)
            if node is None:
                return set()
        return set(node.graph_ids)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_state(self) -> list:
        """JSON-compatible nested dump: ``[graph_ids, children]`` per node.

        Depth is bounded by the indexed path length, so recursion is safe.
        """

        def encode(node: SuffixTrieNode) -> list:
            return [
                sorted(node.graph_ids),
                {str(label): encode(child) for label, child in node.children.items()},
            ]

        return encode(self.root)

    @classmethod
    def from_state(cls, state: list) -> "SuffixTrie":
        """Rebuild a trie from :meth:`to_state` output (inverse bijection)."""
        trie = cls()

        def decode(encoded: list) -> SuffixTrieNode:
            graph_ids, children = encoded
            node = SuffixTrieNode()
            node.graph_ids = set(map(int, graph_ids))
            for label, child in children.items():
                node.children[int(label)] = decode(child)
                trie._num_nodes += 1
            return node

        trie.root = decode(state)
        return trie

    def _walk(self) -> Iterator[SuffixTrieNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def num_entries(self) -> int:
        return sum(len(node.graph_ids) for node in self._walk())
