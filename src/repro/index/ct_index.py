"""The CT-Index (Klein, Kriege & Mutzel, ICDE 2011).

Enumeration-based index whose features are labeled *trees* and *cycles*
(Section III-A "CT-Index"), hashed into a fixed-width fingerprint per data
graph (the paper configures 4096 bits, features up to length 4).
Filtering is a bitwise subset test between the query's fingerprint and each
graph's.

Tree/cycle enumeration is exponentially more expensive than path
enumeration — this is precisely why the paper records CT-Index as
out-of-time on PCM, PPI and most synthetic datasets (Tables VI and VIII);
drive ``add_graph`` with a deadline to reproduce that behaviour.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.index.base import GraphIndex
from repro.index.features import (
    enumerate_cycle_features,
    enumerate_path_features,
    enumerate_tree_features,
)
from repro.index.fingerprint import FingerprintHasher
from repro.utils.timing import Deadline

__all__ = ["CTIndex"]


class CTIndex(GraphIndex):
    """Tree/cycle fingerprint index with subset-test filtering."""

    name = "CT-Index"

    def __init__(
        self,
        num_bits: int = 4096,
        max_tree_edges: int = 4,
        max_cycle_length: int = 4,
        num_hashes: int = 1,
        max_features_per_graph: int | None = None,
    ) -> None:
        self.max_tree_edges = max_tree_edges
        self.max_cycle_length = max_cycle_length
        self.max_features_per_graph = max_features_per_graph
        self._hasher = FingerprintHasher(num_bits=num_bits, num_hashes=num_hashes)
        self._fingerprints: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------

    def _feature_keys(self, graph: Graph, deadline: Deadline | None) -> list[object]:
        keys: list[object] = []
        budget = self.max_features_per_graph
        trees = enumerate_tree_features(
            graph, self.max_tree_edges, deadline=deadline, max_features=budget
        )
        keys.extend(("tree", t) for t in trees)
        cycles = enumerate_cycle_features(
            graph, self.max_cycle_length, deadline=deadline, max_features=budget
        )
        keys.extend(("cycle", c) for c in cycles)
        # Vertex labels keep single-vertex (and label-mismatch) queries
        # filterable even when the graph has no features of size > 0.
        keys.extend(("label", lab) for lab in graph.label_set())
        return keys

    def fingerprint_of(self, graph: Graph, deadline: Deadline | None = None) -> int:
        """Fingerprint of an arbitrary graph (used for queries too)."""
        return self._hasher.fingerprint(self._feature_keys(graph, deadline))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add_graph(
        self, graph_id: int, graph: Graph, deadline: Deadline | None = None
    ) -> None:
        if graph_id in self._fingerprints:
            raise ValueError(f"graph id {graph_id} already indexed")
        self._fingerprints[graph_id] = self.fingerprint_of(graph, deadline)

    def remove_graph(self, graph_id: int) -> None:
        if graph_id not in self._fingerprints:
            raise KeyError(f"graph id {graph_id} is not indexed")
        del self._fingerprints[graph_id]

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def candidates(self, query: Graph, deadline: Deadline | None = None) -> set[int]:
        query_fp = self.fingerprint_of(query, deadline)
        covers = self._hasher.covers
        result = set()
        for gid, fp in self._fingerprints.items():
            if deadline is not None:
                deadline.check()
            if covers(fp, query_fp):
                result.add(gid)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def indexed_ids(self) -> set[int]:
        return set(self._fingerprints)

    def memory_bytes(self) -> int:
        """One fixed-width fingerprint per graph plus dict overhead."""
        per_fp = self._hasher.memory_bytes()
        return len(self._fingerprints) * per_fp + 64 * len(self._fingerprints)
