"""GraphGrep (Shasha, Wang & Giugno, PODS 2002).

The original enumeration-based path index from Table II of the paper, and
the direct ancestor of both GraphGrepSX and Grapes.  GraphGrep stores the
label paths in a flat hash table (the "fingerprint" of each graph: path
feature → occurrence count) rather than a trie, and filters with the same
count-dominance rule as Grapes.

It is not one of the paper's eight competing algorithms (it is dominated
by its descendants) but completes the lineage: the ablation benchmarks use
it to show what the trie and the suffix tree each buy over a plain hash
index.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.index.base import GraphIndex
from repro.index.features import LabelSeq, enumerate_path_features
from repro.utils.errors import MemoryLimitExceeded
from repro.utils.timing import Deadline

__all__ = ["GraphGrepIndex"]


class GraphGrepIndex(GraphIndex):
    """Flat hash-table path-count index.

    ``max_features_per_graph`` bounds one graph's enumeration;
    ``max_total_features`` bounds the retained table across all graphs —
    the uniform OOM budget the other enumeration indices enforce on their
    tries.
    """

    name = "GraphGrep"

    def __init__(
        self,
        max_path_edges: int = 4,
        max_features_per_graph: int | None = None,
        max_total_features: int | None = None,
    ) -> None:
        if max_path_edges < 1:
            raise ValueError("max_path_edges must be at least 1")
        self.max_path_edges = max_path_edges
        self.max_features_per_graph = max_features_per_graph
        self.max_total_features = max_total_features
        #: feature → {graph id → occurrence count}.
        self._table: dict[LabelSeq, dict[int, int]] = {}
        self._ids: set[int] = set()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add_graph(
        self, graph_id: int, graph: Graph, deadline: Deadline | None = None
    ) -> None:
        if graph_id in self._ids:
            raise ValueError(f"graph id {graph_id} already indexed")
        counts, _ = enumerate_path_features(
            graph,
            self.max_path_edges,
            deadline=deadline,
            max_features=self.max_features_per_graph,
        )
        for feature, count in counts.items():
            self._table.setdefault(feature, {})[graph_id] = count
            if (
                self.max_total_features is not None
                and len(self._table) > self.max_total_features
            ):
                raise MemoryLimitExceeded(
                    f"total feature budget of {self.max_total_features} exceeded"
                )
        self._ids.add(graph_id)

    def remove_graph(self, graph_id: int) -> None:
        if graph_id not in self._ids:
            raise KeyError(f"graph id {graph_id} is not indexed")
        # Drop features whose postings emptied, so a churning dynamic
        # database does not keep dead keys (which also count against the
        # total-feature budget) for paths no surviving graph contains.
        empty = []
        for feature, postings in self._table.items():
            postings.pop(graph_id, None)
            if not postings:
                empty.append(feature)
        for feature in empty:
            del self._table[feature]
        self._ids.discard(graph_id)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def candidates(self, query: Graph, deadline: Deadline | None = None) -> set[int]:
        feature_counts, _ = enumerate_path_features(
            query, self.max_path_edges, deadline=deadline
        )
        survivors = set(self._ids)
        for feature, needed in sorted(
            feature_counts.items(),
            key=lambda item: len(self._table.get(item[0], ())),
        ):
            if deadline is not None:
                deadline.check()
            postings = self._table.get(feature)
            if postings is None:
                return set()
            survivors &= {gid for gid, c in postings.items() if c >= needed}
            if not survivors:
                return set()
        return survivors

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def indexed_ids(self) -> set[int]:
        return set(self._ids)

    @property
    def num_features(self) -> int:
        return len(self._table)
