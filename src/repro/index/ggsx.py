"""The GGSX / GraphGrepSX index (Bonnici et al., PRIB 2010).

Enumeration-based path index stored in a suffix tree (Section III-A
"GGSX").  Indexing enumerates, from every data vertex, the depth-bounded
DFS paths that are maximal (no extension possible, or length bound hit) and
inserts each with all its suffixes, so any bounded-length path of the data
graph is findable as a root-anchored walk.  Query filtering decomposes the
query into a DFS edge cover of bounded-length paths and intersects boolean
per-path graph-id sets.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.index.base import GraphIndex
from repro.index.suffix_tree import SuffixTrie
from repro.utils.errors import MemoryLimitExceeded
from repro.utils.timing import Deadline

__all__ = ["GGSXIndex"]

LabelSeq = tuple[int, ...]


class GGSXIndex(GraphIndex):
    """Suffix-trie path index with boolean containment filtering."""

    name = "GGSX"

    def __init__(
        self,
        max_path_edges: int = 4,
        max_trie_nodes: int | None = None,
    ) -> None:
        if max_path_edges < 1:
            raise ValueError("max_path_edges must be at least 1")
        self.max_path_edges = max_path_edges
        self.max_trie_nodes = max_trie_nodes
        self._trie = SuffixTrie()
        self._ids: set[int] = set()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add_graph(
        self, graph_id: int, graph: Graph, deadline: Deadline | None = None
    ) -> None:
        if graph_id in self._ids:
            raise ValueError(f"graph id {graph_id} already indexed")
        for path_labels in self._maximal_paths(graph, deadline):
            self._trie.insert_with_suffixes(path_labels, graph_id)
            if (
                self.max_trie_nodes is not None
                and self._trie.num_nodes > self.max_trie_nodes
            ):
                raise MemoryLimitExceeded(
                    f"suffix trie node budget of {self.max_trie_nodes} exceeded"
                )
        self._ids.add(graph_id)

    def _maximal_paths(self, graph: Graph, deadline: Deadline | None):
        """Yield label sequences of maximal depth-bounded DFS paths."""
        on_path = [False] * graph.num_vertices
        labels: list[int] = []

        def extend(current: int, edges_used: int):
            if deadline is not None:
                deadline.check()
            extended = False
            if edges_used < self.max_path_edges:
                for nxt in graph.neighbors(current):
                    if not on_path[nxt]:
                        extended = True
                        on_path[nxt] = True
                        labels.append(graph.label(nxt))
                        yield from extend(nxt, edges_used + 1)
                        labels.pop()
                        on_path[nxt] = False
            if not extended:
                yield tuple(labels)

        for v in graph.vertices():
            on_path[v] = True
            labels.append(graph.label(v))
            yield from extend(v, 0)
            labels.pop()
            on_path[v] = False

    def remove_graph(self, graph_id: int) -> None:
        if graph_id not in self._ids:
            raise KeyError(f"graph id {graph_id} is not indexed")
        self._trie.remove_graph(graph_id)
        self._ids.discard(graph_id)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def query_paths(self, query: Graph) -> list[LabelSeq]:
        """Decompose the query into a DFS edge cover of bounded paths.

        Every query edge is covered by at least one extracted simple path
        of at most ``max_path_edges`` edges; isolated vertices contribute a
        single-label path.  Soundness: each extracted path occurs in any
        data graph containing the query, and every bounded-length data path
        is findable in the suffix trie.
        """
        unused: set[tuple[int, int]] = set()
        for u, v in query.edges():
            unused.add((u, v))
            unused.add((v, u))
        paths: list[LabelSeq] = []
        for start in query.vertices():
            if query.degree(start) == 0:
                paths.append((query.label(start),))
        while unused:
            u, v = next(iter(unused))
            walk = [u, v]
            unused.discard((u, v))
            unused.discard((v, u))
            while len(walk) - 1 < self.max_path_edges:
                tail = walk[-1]
                step = next(
                    (
                        w
                        for w in query.neighbors(tail)
                        if (tail, w) in unused and w not in walk
                    ),
                    None,
                )
                if step is None:
                    break
                walk.append(step)
                unused.discard((tail, step))
                unused.discard((step, tail))
            paths.append(tuple(query.label(w) for w in walk))
        return paths

    def candidates(self, query: Graph, deadline: Deadline | None = None) -> set[int]:
        survivors = set(self._ids)
        for path_labels in self.query_paths(query):
            if deadline is not None:
                deadline.check()
            # The indexing enumerates from every data vertex, so both
            # orientations of each data path are present; the directed
            # query sequence is therefore found whenever the query embeds.
            survivors &= self._trie.graphs_containing(path_labels)
            if not survivors:
                return set()
        return survivors

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def indexed_ids(self) -> set[int]:
        return set(self._ids)

    @property
    def num_trie_nodes(self) -> int:
        return self._trie.num_nodes
