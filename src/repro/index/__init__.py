"""IFV index substrates: path trie (Grapes), suffix trie (GGSX), and
tree/cycle fingerprints (CT-Index)."""

from repro.index.base import GraphIndex
from repro.index.ct_index import CTIndex
from repro.index.features import (
    canonical_cycle,
    canonical_tree_from_adjacency,
    canonical_path,
    canonical_tree,
    enumerate_cycle_features,
    enumerate_path_features,
    enumerate_tree_features,
)
from repro.index.fingerprint import FingerprintHasher
from repro.index.ggsx import GGSXIndex
from repro.index.graphgrep import GraphGrepIndex
from repro.index.grapes import GrapesIndex
from repro.index.mining import MiningTreeIndex, parse_tree_encoding, tree_parent_features
from repro.index.sing import SINGIndex
from repro.index.suffix_tree import SuffixTrie
from repro.index.trie import PathTrie

__all__ = [
    "CTIndex",
    "FingerprintHasher",
    "GGSXIndex",
    "GraphGrepIndex",
    "GraphIndex",
    "GrapesIndex",
    "MiningTreeIndex",
    "PathTrie",
    "SINGIndex",
    "SuffixTrie",
    "canonical_cycle",
    "canonical_tree_from_adjacency",
    "parse_tree_encoding",
    "tree_parent_features",
    "canonical_path",
    "canonical_tree",
    "enumerate_cycle_features",
    "enumerate_path_features",
    "enumerate_tree_features",
]
