"""Matching-order strategies.

Two strategies from the paper (Section III-B):

* *join-based ordering* (GraphQL): start from the query vertex with the
  fewest candidates, then repeatedly append the neighbor of the selected
  set with the fewest candidates.
* *path-based ordering* (CFL): decompose the query's BFS tree into
  root-to-leaf paths, estimate each path's cost from the candidate set
  sizes, and emit paths in ascending cost — paths through the query's core
  structure (2-core) first, so that Cartesian products between loosely
  connected parts are postponed.

Both produce *connected* orders (a requirement of the shared enumerator)
for connected query graphs.
"""

from __future__ import annotations

from repro.graph.algorithms import BFSTree, two_core
from repro.graph.labeled_graph import Graph
from repro.matching.candidates import CandidateSets

__all__ = ["join_based_order", "path_based_order"]


def join_based_order(query: Graph, candidates: CandidateSets) -> tuple[int, ...]:
    """GraphQL's greedy join order (minimum candidate count first)."""
    n = query.num_vertices
    if n == 0:
        return ()
    sizes = candidates.sizes()
    start = min(query.vertices(), key=lambda u: (sizes[u], u))
    order = [start]
    selected = {start}
    frontier = {u for u in query.neighbors(start)}
    while len(order) < n:
        if not frontier:
            raise ValueError("join_based_order requires a connected query graph")
        nxt = min(frontier, key=lambda u: (sizes[u], u))
        order.append(nxt)
        selected.add(nxt)
        frontier.discard(nxt)
        frontier.update(u for u in query.neighbors(nxt) if u not in selected)
    return tuple(order)


def path_based_order(
    query: Graph,
    tree: BFSTree,
    candidates: CandidateSets,
    core: frozenset[int] | None = None,
) -> tuple[int, ...]:
    """CFL's path-based, core-first order over a BFS tree of the query.

    Each root-to-leaf path is scored by the product of candidate-set sizes
    of the vertices it introduces (a coarse estimate of the number of path
    embeddings, which is what CFL computes exactly from its CPI).  Paths
    that stay in the 2-core come first; within each class, cheaper paths
    first.  Concatenating the paths and deduplicating preserves the
    parent-before-child property, so the order is connected.
    """
    if query.num_vertices == 0:
        return ()
    if core is None:
        core = two_core(query)
    sizes = candidates.sizes()

    paths: list[list[int]] = []
    stack: list[tuple[int, list[int]]] = [(tree.root, [tree.root])]
    while stack:
        vertex, path = stack.pop()
        children = tree.children[vertex]
        if not children:
            paths.append(path)
            continue
        for child in children:
            stack.append((child, path + [child]))

    def path_key(path: list[int]) -> tuple[int, float, tuple[int, ...]]:
        # The root belongs to every path; classify by the rest.
        interior = path[1:] if len(path) > 1 else path
        in_core = 0 if all(u in core for u in interior) and core else 1
        cost = 1.0
        for u in path:
            cost *= max(sizes[u], 1)
        return (in_core, cost, tuple(path))

    order: list[int] = []
    seen: set[int] = set()
    for path in sorted(paths, key=path_key):
        for u in path:
            if u not in seen:
                seen.add(u)
                order.append(u)
    return tuple(order)
