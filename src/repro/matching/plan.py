"""Compiled query plans: compile a query once, reuse it everywhere.

The enumeration path used to re-derive per-query state for *every data
graph* a query was verified against: the matching order was re-validated,
its backward-neighbor lists rebuilt, the query's 2-core and BFS tree
recomputed, and the NLF constraint dictionaries re-iterated.  None of that
depends on the data graph.  A :class:`QueryPlan` hoists all of it to
query-compile time:

* per-vertex label/degree arrays and flattened NLF constraint tuples (the
  filter-phase constants);
* a memo of :class:`CompiledOrder` objects — each a *validated* connected
  matching order with its backward-neighbor structure expressed as flat
  position arrays the iterative enumeration kernel consumes directly;
* the query's 2-core and per-root BFS trees (CFL's ordering inputs).

On top sits :class:`PlanCache`, an engine/service-level LRU keyed by a
*canonical* form of the query, so a repeat of an isomorphic query — same
structure, relabeled vertex ids — hits the cache, not just a byte-identical
repeat.  Canonicalisation uses the standard individualisation-refinement
scheme (WL color refinement plus backtracking over minimal target cells),
which is exact; pathologically symmetric queries that would blow the search
budget fall back to an exact-form key (sound — such queries simply only hit
on identical numbering).  Cache hits on a relabeled query :meth:`rebind`
the stored plan through the canonical vertex correspondence, which is an
isomorphism whenever the certificates match.

Plans are plain picklable data (no locks, no graph-database references
beyond the query itself), so they serialize with the query when a pool
executor dispatches work — workers never recompile.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict

from repro.graph.algorithms import BFSTree, bfs_tree, two_core
from repro.graph.labeled_graph import Graph

__all__ = [
    "CompiledOrder",
    "PlanCache",
    "QueryPlan",
    "canonical_query_key",
    "compile_order",
    "compile_plan",
    "exact_query_key",
]

#: Most compiled orders memoized per plan.  Orders vary with candidate-set
#: sizes, so a query touching many data graphs can produce many distinct
#: orders; the memo is a cache, not a registry, and overflow just compiles
#: without remembering.
_MAX_ORDER_MEMO = 64

#: Most BFS trees memoized per plan (one per distinct CFL root).
_MAX_TREE_MEMO = 16

#: Leaves the canonical-labeling search may visit before giving up on a
#: pathologically symmetric query and falling back to the exact-form key.
_CANON_LEAF_BUDGET = 4096


class CompiledOrder:
    """One validated connected matching order in kernel-ready form.

    Everything is indexed by *depth* (position in the order), the way the
    iterative kernel walks it:

    ``backward[d]``
        positions (< d) of the query neighbors of ``order[d]`` that appear
        earlier in the order;
    ``prefix_positions[d]``
        the subset of ``backward[d]`` strictly below ``d - 1`` — the part
        of the Φ(u) ∩ N(...) intersection that is *shared by sibling
        subtrees* at depth ``d - 1`` and therefore memoizable;
    ``extends_previous[d]``
        whether ``d - 1`` itself is a backward position (the one
        intersection term that changes per sibling).
    """

    __slots__ = ("order", "backward", "prefix_positions", "extends_previous")

    def __init__(
        self,
        order: tuple[int, ...],
        backward: tuple[tuple[int, ...], ...],
        prefix_positions: tuple[tuple[int, ...], ...],
        extends_previous: tuple[bool, ...],
    ) -> None:
        self.order = order
        self.backward = backward
        self.prefix_positions = prefix_positions
        self.extends_previous = extends_previous

    def translated(self, mapping: dict[int, int]) -> "CompiledOrder":
        """The same order under a vertex relabeling (an isomorphism).

        Backward structure is positional, so only the order tuple changes.
        """
        return CompiledOrder(
            tuple(mapping[u] for u in self.order),
            self.backward,
            self.prefix_positions,
            self.extends_previous,
        )


def compile_order(query: Graph, order: tuple[int, ...]) -> CompiledOrder:
    """Validate ``order`` (permutation + connectivity) and compile it.

    Raises :class:`ValueError` exactly like the legacy ``_validate_order``
    — this *is* that validation, run once per distinct order instead of
    once per data graph.
    """
    if sorted(order) != list(query.vertices()):
        raise ValueError(f"order {order!r} is not a permutation of the query vertices")
    position = {u: i for i, u in enumerate(order)}
    backward: list[tuple[int, ...]] = []
    prefix: list[tuple[int, ...]] = []
    extends: list[bool] = []
    for i, u in enumerate(order):
        earlier = sorted(position[u2] for u2 in query.neighbors(u) if position[u2] < i)
        if i > 0 and not earlier:
            raise ValueError(
                f"matching order is not connected: {u} has no earlier neighbor"
            )
        backward.append(tuple(earlier))
        extends.append(bool(earlier) and earlier[-1] == i - 1)
        prefix.append(tuple(earlier[:-1]) if extends[-1] else tuple(earlier))
    return CompiledOrder(tuple(order), tuple(backward), tuple(prefix), tuple(extends))


class QueryPlan:
    """Everything about one query that is independent of the data graph.

    Construct through :func:`compile_plan` (or :meth:`PlanCache.get`).
    The per-order / per-root memos fill in lazily as the query is verified
    against data graphs and are bounded (see ``_MAX_ORDER_MEMO``).
    """

    __slots__ = (
        "query",
        "labels",
        "degrees",
        "nlf_labels",
        "nlf_counts",
        "nlf_offsets",
        "exact_key",
        "canonical_key",
        "canonical_positions",
        "_orders",
        "_trees",
        "_core",
        "_nlf_items",
    )

    def __init__(
        self,
        query: Graph,
        exact_key: str | None = None,
        canonical_key: str | None = None,
        canonical_positions: tuple[int, ...] | None = None,
    ) -> None:
        self.query = query
        # Filter-phase constants as flat typed arrays: backend-agnostic
        # (both bitset kernels index them the same way) and they pickle as
        # raw machine words — a compact wire form for the executor-pool
        # boundary, unlike tuples of per-vertex tuples.
        self.labels = array("q", query.labels)
        self.degrees = array("q", (query.degree(u) for u in query.vertices()))
        nlf_labels = array("q")
        nlf_counts = array("q")
        nlf_offsets = array("q", [0])
        for u in query.vertices():
            for lab, cnt in sorted(query.neighbor_label_counts(u).items()):
                nlf_labels.append(lab)
                nlf_counts.append(cnt)
            nlf_offsets.append(len(nlf_labels))
        #: CSR-style NLF constraints: vertex ``u``'s (label, min count)
        #: pairs live at ``nlf_labels/nlf_counts[nlf_offsets[u] :
        #: nlf_offsets[u + 1]]``.
        self.nlf_labels = nlf_labels
        self.nlf_counts = nlf_counts
        self.nlf_offsets = nlf_offsets
        self._nlf_items: tuple[tuple[tuple[int, int], ...], ...] | None = None
        self.exact_key = exact_key if exact_key is not None else exact_query_key(query)
        #: Isomorphism-invariant cache key (None until a PlanCache computes
        #: it; plain compile_plan callers never pay for canonicalisation).
        self.canonical_key = canonical_key
        #: vertex -> canonical position, for rebinding isomorphic repeats.
        self.canonical_positions = canonical_positions
        self._orders: dict[tuple[int, ...], CompiledOrder] = {}
        self._trees: dict[int, BFSTree] = {}
        self._core: frozenset[int] | None = None

    @property
    def nlf_items(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Per-vertex ``((label, min count), ...)`` view of the flat NLF
        arrays (compat shape, rebuilt lazily and memoized)."""
        if self._nlf_items is None:
            off = self.nlf_offsets
            self._nlf_items = tuple(
                tuple(
                    (self.nlf_labels[k], self.nlf_counts[k])
                    for k in range(off[u], off[u + 1])
                )
                for u in range(len(self.labels))
            )
        return self._nlf_items

    # ------------------------------------------------------------------
    # Memoized derivations
    # ------------------------------------------------------------------

    def compiled_order(self, order: tuple[int, ...]) -> CompiledOrder:
        """The validated, kernel-ready form of ``order`` (memoized)."""
        compiled = self._orders.get(order)
        if compiled is None:
            compiled = compile_order(self.query, order)
            if len(self._orders) < _MAX_ORDER_MEMO:
                self._orders[order] = compiled
        return compiled

    def two_core(self) -> frozenset[int]:
        """The query's 2-core (computed once, not once per data graph)."""
        if self._core is None:
            self._core = two_core(self.query)
        return self._core

    def bfs_tree(self, root: int) -> BFSTree:
        """The query's BFS tree from ``root`` (memoized per root)."""
        tree = self._trees.get(root)
        if tree is None:
            tree = bfs_tree(self.query, root)
            if len(self._trees) < _MAX_TREE_MEMO:
                self._trees[root] = tree
        return tree

    # ------------------------------------------------------------------
    # Isomorphic rebinding
    # ------------------------------------------------------------------

    def rebind(
        self, query: Graph, positions: tuple[int, ...], exact_key: str
    ) -> "QueryPlan":
        """This plan translated onto an isomorphic ``query``.

        ``positions`` is ``query``'s canonical labeling; matching
        certificates guarantee that mapping vertices through canonical
        positions is an isomorphism, so every memoized compiled order
        stays valid after translation.
        """
        if self.canonical_positions is None:
            raise ValueError("cannot rebind a plan without a canonical labeling")
        inverse = [0] * len(positions)
        for v, pos in enumerate(positions):
            inverse[pos] = v
        mapping = {
            u: inverse[self.canonical_positions[u]] for u in self.query.vertices()
        }
        plan = QueryPlan(
            query,
            exact_key=exact_key,
            canonical_key=self.canonical_key,
            canonical_positions=positions,
        )
        for order, compiled in self._orders.items():
            plan._orders[tuple(mapping[u] for u in order)] = compiled.translated(mapping)
        if self._core is not None:
            plan._core = frozenset(mapping[u] for u in self._core)
        return plan

    def __repr__(self) -> str:
        return (
            f"<QueryPlan n={self.query.num_vertices} "
            f"orders={len(self._orders)} key={self.exact_key[:32]!r}>"
        )


def compile_plan(query: Graph, **keys) -> QueryPlan:
    """Compile a query into a :class:`QueryPlan` (no canonicalisation)."""
    return QueryPlan(query, **keys)


# ----------------------------------------------------------------------
# Query keys
# ----------------------------------------------------------------------


def exact_query_key(graph: Graph) -> str:
    """Byte-exact key: same labeled adjacency under the same numbering."""
    edges = ",".join(
        f"{u}-{v}" for u, v in sorted(min((u, v), (v, u)) for u, v in graph.edges())
    )
    return ":".join(str(l) for l in graph.labels) + "|" + edges


class _CanonBudgetExceeded(Exception):
    pass


def _refine(n: int, adj: list[list[int]], colors: list[int]) -> list[int]:
    """WL color refinement to a stable partition, colors renumbered densely
    in signature order (so equal partitions yield equal colorings)."""
    while True:
        sigs = [
            (colors[v], tuple(sorted(colors[w] for w in adj[v]))) for v in range(n)
        ]
        ranking = {s: i for i, s in enumerate(sorted(set(sigs)))}
        refined = [ranking[s] for s in sigs]
        if refined == colors:
            return colors
        colors = refined


def _canonical_form(
    graph: Graph, budget: int = _CANON_LEAF_BUDGET
) -> tuple[tuple, tuple[int, ...]] | None:
    """Exact canonical certificate + labeling, or None when over budget.

    Individualisation-refinement: refine to a stable partition; while some
    color class is non-singleton, branch on each vertex of the first
    smallest one (a partition-determined choice, so the minimum over all
    leaves is isomorphism-invariant); a discrete coloring *is* a vertex ->
    position assignment, whose certificate is the labels-then-edges
    encoding under that numbering.  The lexicographically smallest
    certificate over all leaves is the canonical form.
    """
    n = graph.num_vertices
    if n == 0:
        return ((), ()), ()
    adj = [list(graph.neighbors(v)) for v in range(n)]
    labels = list(graph.labels)
    edge_list = list(graph.edges())
    seed = {s: i for i, s in enumerate(sorted({(labels[v], len(adj[v])) for v in range(n)}))}
    initial = _refine(n, adj, [seed[(labels[v], len(adj[v]))] for v in range(n)])

    best: list[tuple | None] = [None]
    best_positions: list[tuple[int, ...] | None] = [None]
    leaves = [0]

    def certificate(positions: list[int]) -> tuple:
        lab = [0] * n
        for v in range(n):
            lab[positions[v]] = labels[v]
        edges = sorted(
            (positions[u], positions[v])
            if positions[u] < positions[v]
            else (positions[v], positions[u])
            for u, v in edge_list
        )
        return (tuple(lab), tuple(edges))

    def search(colors: list[int]) -> None:
        counts: dict[int, int] = {}
        for c in colors:
            counts[c] = counts.get(c, 0) + 1
        if len(counts) == n:
            leaves[0] += 1
            if leaves[0] > budget:
                raise _CanonBudgetExceeded
            cert = certificate(colors)
            if best[0] is None or cert < best[0]:
                best[0] = cert
                best_positions[0] = tuple(colors)
            return
        target = min(
            (c for c, k in counts.items() if k > 1),
            key=lambda c: (counts[c], c),
        )
        for v in range(n):
            if colors[v] != target:
                continue
            child = list(colors)
            # Individualize: v gets a strictly smaller color than its old
            # class, then the refinement renormalizes densely.
            child[v] = -1
            search(_refine(n, adj, child))

    try:
        search(initial)
    except _CanonBudgetExceeded:
        return None
    assert best[0] is not None and best_positions[0] is not None
    return best[0], best_positions[0]


def canonical_query_key(graph: Graph) -> tuple[str, tuple[int, ...] | None]:
    """Isomorphism-invariant key + canonical labeling for ``graph``.

    Returns ``("c|...", positions)`` from the exact canonical form, or —
    when the symmetry search exceeds its budget — a sound fallback
    ``("x|" + exact key, None)`` that only matches identical numberings.
    """
    form = _canonical_form(graph)
    if form is None:
        return "x|" + exact_query_key(graph), None
    (lab, edges), positions = form
    key = (
        "c|"
        + ":".join(str(l) for l in lab)
        + "|"
        + ",".join(f"{u}-{v}" for u, v in edges)
    )
    return key, positions


# ----------------------------------------------------------------------
# The engine/service-level plan cache
# ----------------------------------------------------------------------

#: Most exact-numbering variants retained per canonical entry.
_MAX_VARIANTS = 4


class PlanCache:
    """LRU of :class:`QueryPlan` s keyed by canonical query form.

    Lookup is two-level: a cheap exact-key index answers the common case
    (a byte-identical repeat, e.g. the same wire query re-submitted to the
    service) without canonicalising at all; otherwise the canonical key is
    computed and an isomorphic entry, if present, is rebound onto the new
    numbering — still a *hit*.  ``hits``/``misses`` feed
    ``QueryResult.metadata`` and the service ``stats`` verb.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        #: canonical key -> {exact key -> plan}, LRU over canonical keys.
        self._canon: OrderedDict[str, dict[str, QueryPlan]] = OrderedDict()
        #: exact key -> canonical key (the fast path).
        self._exact: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._canon)

    def get(self, query: Graph) -> tuple[QueryPlan, str]:
        """The plan for ``query``; returns ``(plan, "hit" | "miss")``."""
        exact = exact_query_key(query)
        with self._lock:
            canon_key = self._exact.get(exact)
            if canon_key is not None:
                self._canon.move_to_end(canon_key)
                self.hits += 1
                return self._canon[canon_key][exact], "hit"
        # Canonicalisation is pure; keep it outside the lock.
        canon_key, positions = canonical_query_key(query)
        with self._lock:
            variants = self._canon.get(canon_key)
            if variants is not None:
                self._canon.move_to_end(canon_key)
                plan = variants.get(exact)
                if plan is None:
                    base = next(iter(variants.values()))
                    if positions is not None and base.canonical_positions is not None:
                        plan = base.rebind(query, positions, exact)
                    else:  # fallback-keyed entry: exact keys always match
                        plan = QueryPlan(
                            query,
                            exact_key=exact,
                            canonical_key=canon_key,
                            canonical_positions=positions,
                        )
                    if len(variants) < _MAX_VARIANTS:
                        variants[exact] = plan
                        self._exact[exact] = canon_key
                self.hits += 1
                return plan, "hit"
            self.misses += 1
            plan = QueryPlan(
                query,
                exact_key=exact,
                canonical_key=canon_key,
                canonical_positions=positions,
            )
            self._canon[canon_key] = {exact: plan}
            self._exact[exact] = canon_key
            while len(self._canon) > self.capacity:
                _, evicted = self._canon.popitem(last=False)
                for exact_key in evicted:
                    self._exact.pop(exact_key, None)
            return plan, "miss"

    def clear(self) -> None:
        with self._lock:
            self._canon.clear()
            self._exact.clear()

    def stats(self) -> dict:
        """JSON-ready counters for result metadata and the service stats."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._canon),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return f"<PlanCache {len(self._canon)}/{self.capacity} hits={self.hits}>"
