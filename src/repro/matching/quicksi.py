"""QuickSI (Shang et al., PVLDB 2008) — direct enumeration driven by a
minimum-selectivity spanning tree.

QuickSI belongs to the direct-enumeration family (Section II-B2 of the
paper): it builds no per-query candidate structure.  Its contribution is
the *QI-sequence* — a spanning tree of the query grown greedily over the
edges whose (label, label) pair is rarest in the data graph, so that the
search binds the most selective parts of the query first.  Enumeration
then follows the sequence with plain label/degree feasibility checks,
verifying non-tree edges as soon as both endpoints are bound.

This implementation realises the QI-sequence as a connected matching order
(Prim-style growth over edge-frequency weights) and reuses the shared
backtracking enumerator over label-and-degree candidate sets — the same
"cheap local filters during search" behaviour the paper attributes to the
direct-enumeration algorithms.  (The original's optional pivot/degree
extensions are omitted; they do not change the answer set.)
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.matching.base import MatchOutcome, SubgraphMatcher
from repro.matching.candidates import CandidateSets, ldf_candidates, select_kernel
from repro.matching.enumeration import enumerate_embeddings
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline, Timer

__all__ = ["QuickSIMatcher", "qi_sequence_order"]


def _pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


def qi_sequence_order(query: Graph, data: Graph) -> tuple[int, ...]:
    """QuickSI's matching order: grow a spanning tree over rare edges.

    Edge weight = frequency of its label pair in the data graph (plus the
    label frequency of the endpoint as a tie-break); the first edge is the
    globally rarest, subsequent edges are the rarest touching the tree.
    """
    if query.num_vertices == 0:
        return ()
    if query.num_edges == 0:
        return (0,)
    pair_counts = data.edge_label_counts()

    def edge_weight(u: int, v: int) -> tuple[int, int, int, int]:
        pair_freq = pair_counts.get(_pair(query.label(u), query.label(v)), 0)
        vertex_freq = len(data.vertices_with_label(query.label(v)))
        return (pair_freq, vertex_freq, u, v)

    first = min(
        ((u, v) for u, v in query.edges()),
        key=lambda e: min(edge_weight(*e), edge_weight(e[1], e[0])),
    )
    u0, v0 = first
    # Orient the first edge so the rarer endpoint label is bound first.
    if len(data.vertices_with_label(query.label(v0))) < len(
        data.vertices_with_label(query.label(u0))
    ):
        u0, v0 = v0, u0
    order = [u0, v0]
    in_tree = {u0, v0}
    while len(order) < query.num_vertices:
        best: tuple[tuple[int, int, int, int], int] | None = None
        for u in order:
            for v in query.neighbors(u):
                if v in in_tree:
                    continue
                weight = edge_weight(u, v)
                if best is None or weight < best[0]:
                    best = (weight, v)
        if best is None:
            raise ValueError("qi_sequence_order requires a connected query graph")
        order.append(best[1])
        in_tree.add(best[1])
    return tuple(order)


class QuickSIMatcher(SubgraphMatcher):
    """Direct-enumeration matcher with QI-sequence ordering."""

    name = "QuickSI"

    def run(
        self,
        query: Graph,
        data: Graph,
        limit: int | None = None,
        collect: bool = False,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> MatchOutcome:
        outcome = MatchOutcome()
        if query.num_vertices == 0:
            outcome.found = True
            outcome.num_embeddings = 1
            if collect:
                outcome.embeddings.append({})
            return outcome
        with Timer() as t_order:
            order = qi_sequence_order(query, data)
        outcome.order = order
        outcome.order_time = t_order.elapsed
        # Direct enumeration: only the cheap per-vertex LDF seed, no
        # preprocessing structure (hence not counted as filter time).
        candidates = CandidateSets(
            ldf_candidates(query, data),
            kernel=select_kernel(data),
            num_vertices=data.num_vertices,
        )
        if not candidates.all_nonempty:
            return outcome
        with Timer() as t_enum:
            result = enumerate_embeddings(
                query, data, candidates, order,
                limit=limit, collect=collect, deadline=deadline, plan=plan,
            )
        outcome.enumeration_time = t_enum.elapsed
        outcome.num_embeddings = result.num_embeddings
        outcome.embeddings = result.embeddings
        outcome.recursion_calls = result.recursion_calls
        outcome.completed = result.completed
        outcome.found = result.found
        return outcome
