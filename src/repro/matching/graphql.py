"""The GraphQL subgraph matcher (He & Singh, SIGMOD 2008), as modified by
the paper for subgraph query processing.

Filter phase (the paper, Section III-B "GraphQL"):

1. Seed each Φ(u) by the neighborhood profile — the NLF filter.
2. Prune with the *pseudo subgraph isomorphism* test: for ``v ∈ Φ(u)``,
   build the bigraph B between N(u) and N(v) with an edge (u', v') iff
   ``v' ∈ Φ(u')``; remove ``v`` unless B has a semi-perfect matching
   (every vertex of N(u) matched).  The check runs along ascending query
   vertex ids — the order the paper fixes for its implementation — and is
   repeated for a configurable number of refinement sweeps (the original
   algorithm's refinement level).

Enumeration phase: join-based ordering + the shared backtracking
enumerator.

The pruning is complete: if ``φ`` embeds the query with ``φ(u) = v``, then
matching every ``u' ∈ N(u)`` to ``φ(u')`` is a semi-perfect matching of B,
so ``v`` survives.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.matching.base import PreprocessingMatcher
from repro.matching.bipartite import has_semi_perfect_matching_bits
from repro.matching.candidates import (
    CandidateSets,
    nlf_candidate_bits,
    select_kernel,
)
from repro.matching.ordering import join_based_order
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline

__all__ = ["GraphQLMatcher"]


class GraphQLMatcher(PreprocessingMatcher):
    """Preprocessing-enumeration matcher with GraphQL's filter and order.

    Parameters
    ----------
    refine_iterations:
        Number of pseudo-isomorphism refinement sweeps over all query
        vertices.  The default (2) mirrors the original algorithm's default
        optimization level; completeness holds for any value.
    """

    name = "GraphQL"

    def __init__(self, refine_iterations: int = 2) -> None:
        if refine_iterations < 0:
            raise ValueError("refine_iterations must be non-negative")
        self.refine_iterations = refine_iterations

    # ------------------------------------------------------------------
    # Filter phase
    # ------------------------------------------------------------------

    def build_candidates(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> CandidateSets | None:
        phi = nlf_candidate_bits(query, data, deadline=deadline, plan=plan)
        if not all(phi):
            return None
        for _ in range(self.refine_iterations):
            changed = False
            # Ascending query-vertex ids, per the paper's implementation note.
            for u in query.vertices():
                if deadline is not None:
                    deadline.check()
                kept = phi[u]
                pool = kept
                while pool:
                    low = pool & -pool
                    pool ^= low
                    if not self._pseudo_iso(query, data, phi, u, low.bit_length() - 1):
                        kept ^= low
                if kept != phi[u]:
                    changed = True
                    if not kept:
                        return None
                    phi[u] = kept
            if not changed:
                break
        # Refinement is int-bitmap native; hand the selected backend the
        # finished sets at the boundary (one cheap conversion per query).
        return CandidateSets.from_bitmaps(
            phi, kernel=select_kernel(data), num_vertices=data.num_vertices
        )

    @staticmethod
    def _pseudo_iso(
        query: Graph,
        data: Graph,
        phi: list[int],
        u: int,
        v: int,
    ) -> bool:
        """The local bipartite feasibility test for the mapping (u, v)."""
        data_nbrs = data.neighbor_bitmap(v)
        rows: list[int] = []
        for u2 in query.neighbors(u):
            row_bits = phi[u2] & data_nbrs
            if not row_bits:
                return False
            rows.append(row_bits)
        return has_semi_perfect_matching_bits(rows)

    # ------------------------------------------------------------------
    # Ordering phase
    # ------------------------------------------------------------------

    def matching_order(
        self,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
        plan: QueryPlan | None = None,
    ) -> tuple[int, ...]:
        return join_based_order(query, candidates)
