"""Subgraph matching algorithms: direct-enumeration (Ullmann, VF2) and
preprocessing-enumeration (GraphQL, CFL, CFQL)."""

from repro.matching.base import MatchOutcome, PreprocessingMatcher, SubgraphMatcher
from repro.matching.bipartite import (
    has_semi_perfect_matching,
    has_semi_perfect_matching_bits,
    maximum_bipartite_matching,
)
from repro.matching.candidates import (
    CandidateSets,
    ldf_candidate_bits,
    ldf_candidates,
    nlf_candidate_bits,
    nlf_candidates,
)
from repro.matching.cfl import CFLMatcher
from repro.matching.cfql import CFQLMatcher
from repro.matching.enumeration import (
    EnumerationResult,
    enumerate_embeddings,
    enumerate_embeddings_iterative,
    enumerate_embeddings_recursive,
)
from repro.matching.graphql import GraphQLMatcher
from repro.matching.ordering import join_based_order, path_based_order
from repro.matching.plan import (
    CompiledOrder,
    PlanCache,
    QueryPlan,
    canonical_query_key,
    compile_order,
    compile_plan,
    exact_query_key,
)
from repro.matching.quicksi import QuickSIMatcher, qi_sequence_order
from repro.matching.spath import SPathMatcher, neighborhood_signature
from repro.matching.turboiso import TurboIsoMatcher
from repro.matching.ullmann import UllmannMatcher
from repro.matching.vf2 import VF2Matcher

__all__ = [
    "CFLMatcher",
    "CFQLMatcher",
    "CandidateSets",
    "CompiledOrder",
    "EnumerationResult",
    "GraphQLMatcher",
    "MatchOutcome",
    "PlanCache",
    "PreprocessingMatcher",
    "QueryPlan",
    "QuickSIMatcher",
    "SPathMatcher",
    "SubgraphMatcher",
    "TurboIsoMatcher",
    "UllmannMatcher",
    "VF2Matcher",
    "canonical_query_key",
    "compile_order",
    "compile_plan",
    "enumerate_embeddings",
    "enumerate_embeddings_iterative",
    "enumerate_embeddings_recursive",
    "exact_query_key",
    "has_semi_perfect_matching",
    "has_semi_perfect_matching_bits",
    "join_based_order",
    "ldf_candidate_bits",
    "ldf_candidates",
    "maximum_bipartite_matching",
    "neighborhood_signature",
    "nlf_candidate_bits",
    "nlf_candidates",
    "path_based_order",
    "qi_sequence_order",
]
