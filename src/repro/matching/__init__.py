"""Subgraph matching algorithms: direct-enumeration (Ullmann, VF2) and
preprocessing-enumeration (GraphQL, CFL, CFQL)."""

from repro.matching.base import MatchOutcome, PreprocessingMatcher, SubgraphMatcher
from repro.matching.bipartite import (
    has_semi_perfect_matching,
    maximum_bipartite_matching,
)
from repro.matching.candidates import (
    CandidateSets,
    ldf_candidate_bits,
    ldf_candidates,
    nlf_candidate_bits,
    nlf_candidates,
)
from repro.matching.cfl import CFLMatcher
from repro.matching.cfql import CFQLMatcher
from repro.matching.enumeration import EnumerationResult, enumerate_embeddings
from repro.matching.graphql import GraphQLMatcher
from repro.matching.ordering import join_based_order, path_based_order
from repro.matching.quicksi import QuickSIMatcher, qi_sequence_order
from repro.matching.spath import SPathMatcher, neighborhood_signature
from repro.matching.turboiso import TurboIsoMatcher
from repro.matching.ullmann import UllmannMatcher
from repro.matching.vf2 import VF2Matcher

__all__ = [
    "CFLMatcher",
    "CFQLMatcher",
    "CandidateSets",
    "EnumerationResult",
    "GraphQLMatcher",
    "MatchOutcome",
    "PreprocessingMatcher",
    "QuickSIMatcher",
    "SPathMatcher",
    "SubgraphMatcher",
    "TurboIsoMatcher",
    "UllmannMatcher",
    "VF2Matcher",
    "enumerate_embeddings",
    "has_semi_perfect_matching",
    "join_based_order",
    "ldf_candidate_bits",
    "ldf_candidates",
    "maximum_bipartite_matching",
    "neighborhood_signature",
    "nlf_candidate_bits",
    "nlf_candidates",
    "path_based_order",
    "qi_sequence_order",
]
