"""The word-block (numpy) enumeration kernel.

Same contract and search semantics as the int-bitmap iterative kernel in
:mod:`repro.matching.enumeration` — explicit stack over a compiled order,
GraphMini-style sibling-shared prefix memo, ascending-id candidate order,
identical ``limit``/``collect``/deadline behavior — but over ``uint64``
word-block bitmaps, with two extra levels of vectorization:

* *whole-frontier child pools*: when a frame first needs its child's
  prefix (cand ∩ ~used ∩ shared backward images — fixed for the frame's
  lifetime, exactly the sibling-memo invariant), the kernel immediately
  computes the child pool of **every** sibling in one batch — gather all
  the siblings' adjacency rows from the precomputed (per-label)
  adjacency matrix, AND the shared prefix across the block, clear each
  sibling's own bit.  Per sibling that leaves zero bitmap operations:
  a precomputed non-emptiness flag and, on descent, one decode;
* the *deepest level counts in bulk*: at depth ``n - 2`` the frontier's
  pool matrix is popcounted row-wise in one vectorized call — the int
  kernel's per-sibling intersect-and-popcount loop becomes ~4 numpy
  calls per parent frame;
* *per-label adjacency matrices* (see
  :class:`~repro.graph.bitmap_profile.NumpyGraphProfile`) serve the
  prefix intersections whenever a candidate set is label-pure (it is for
  every filter in this library), so intersections run against the
  sparser label-restricted neighborhoods and empty out earlier.

The kernel is routed to by :func:`~repro.matching.enumeration.
enumerate_embeddings_iterative` only when ``REPRO_ENUM_KERNEL=wordblock``
is set: the tree walk is inherently per-node python-driven, and measured
end to end the int-bitmap kernel wins it 4-12x at every scale tried
(1k-32k vertices, 16-512 words) because big-int AND/popcount on bitmaps
that size run in well under a microsecond while every numpy call pays
~µs of dispatch overhead.  The word-block backend's real wins are the
batch phases — vectorized seed filters and whole-frontier intersection/
popcount — so by default enumeration converts word-block candidate sets
to int bitmaps at the boundary instead.  Callers never import this
module directly, which keeps numpy an optional dependency.
"""

from __future__ import annotations

import numpy as np

from repro.graph.labeled_graph import Graph
from repro.utils.timing import Deadline

__all__ = ["run_wordblock_kernel"]

#: Units of enumeration work between deadline polls (one unit = one
#: candidate considered), matching the int kernel's stride.  Leaf batches
#: poll once per chunk, so expiry overshoot is bounded by the chunk size.
_ENUM_STRIDE = 64

#: Most sibling rows materialized per leaf batch.  Bounds the transient
#: (chunk × words) matrix and keeps deadline polls regular on huge
#: frontiers.
_LEAF_CHUNK = 2048

_ONE = np.uint64(1)
_WORD_BITS = np.uint64(63)


def _clear_bit(row: np.ndarray, v: int) -> None:
    row[v >> 6] &= ~(_ONE << np.uint64(v & 63))


def _set_bit(row: np.ndarray, v: int) -> None:
    row[v >> 6] |= _ONE << np.uint64(v & 63)


def run_wordblock_kernel(
    query: Graph,
    data: Graph,
    candidates,
    compiled,
    result,
    limit: int | None,
    collect: bool,
    deadline: Deadline | None,
    prefix_cache: bool = True,
):
    """Fill ``result`` by enumerating over word-block candidate bitmaps.

    ``compiled`` is a validated
    :class:`~repro.matching.plan.CompiledOrder`; ``result`` is a fresh
    :class:`~repro.matching.enumeration.EnumerationResult` (passed in to
    avoid a circular import).  Returns ``result``.
    """
    kernel = candidates.kernel
    profile = data.bitset_profile(kernel)
    ordv = compiled.order
    prefixes = compiled.prefix_positions
    extends = compiled.extends_previous
    n = len(ordv)
    result.recursion_calls = 1

    if n == 1:
        pool = candidates.bits(ordv[0])
        cnt = kernel.popcount(pool)
        if deadline is not None:
            deadline.check_every(cnt + 1)
        take = cnt if limit is None else min(cnt, limit)
        result.num_embeddings = take
        if limit is not None and cnt >= limit:
            result.completed = False
        if collect and take:
            u0 = ordv[0]
            result.embeddings = [{u0: v} for v in kernel.bit_list(pool)[:take]]
        return result

    words = profile.words
    cand_rows = [candidates.bits(u) for u in ordv]
    # Per-depth adjacency: the label-restricted matrix whenever Φ(order[d])
    # is label-pure (restricting N(v) to L(u) cannot drop a candidate of u
    # then), the full matrix otherwise.  Purity holds for every filter in
    # this library, but correctness must not depend on it.
    adj_by_depth = []
    for d, u in enumerate(ordv):
        label_row = profile.label_row(query.label(u))
        pure = not bool(np.any(cand_rows[d] & ~label_row))
        adj_by_depth.append(
            profile.label_adjacency(query.label(u)) if pure else profile.adjacency()
        )

    last = n - 1
    decode = kernel.bit_array
    popcount_rows = kernel.popcount_rows
    used = np.zeros(words, dtype=np.uint64)
    ids: list[np.ndarray | None] = [None] * n
    ptrs = [0] * n
    mapping_v = [0] * n
    # Per-frame batch state, indexed by the *child* depth it feeds:
    # child_prefix[d] is the shared prefix Φ(order[d]) ∩ ~used ∩ ⋂ N(...)
    # over backward positions below d-1; child_pools[d] holds every
    # sibling's child pool as one (frontier × words) matrix, child_live[d]
    # its row non-emptiness flags.  All valid for the parent frame's
    # lifetime — the same invariant as the int kernel's sibling memo.
    child_prefix: list[np.ndarray | None] = [None] * n
    child_pools: list[np.ndarray | None] = [None] * n
    child_live: list[np.ndarray | None] = [None] * n
    cp_ok = [False] * n
    work = 0
    stop = False

    def shared_prefix(child: int) -> np.ndarray:
        pref = cand_rows[child] & ~used
        adj_c = adj_by_depth[child]
        for p in prefixes[child]:
            pref &= adj_c[mapping_v[p]]
        return pref

    def pool_matrix(child: int, vs: np.ndarray, pref: np.ndarray) -> np.ndarray:
        """Child pools of every sibling in ``vs``, one batch: gather the
        adjacency rows, AND the shared prefix, clear each own bit."""
        if extends[child]:
            rows = adj_by_depth[child][vs] & pref
        else:
            rows = np.broadcast_to(pref, (vs.size, words)).copy()
        rr = np.arange(vs.size)
        rows[rr, vs >> 6] &= ~(_ONE << (vs.astype(np.uint64) & _WORD_BITS))
        return rows

    ids[0] = decode(cand_rows[0])
    depth = 0
    while depth >= 0 and not stop:
        arr = ids[depth]
        i = ptrs[depth]
        if i >= arr.size:
            depth -= 1
            if depth >= 0:
                _clear_bit(used, mapping_v[depth])
            continue
        child = depth + 1

        if child == last:
            # Deepest level: the remaining frontier's pool matrix *is* the
            # embedding extension set — popcount it row-wise in bulk.
            pref = shared_prefix(child)
            vs_all = arr[i:]
            ptrs[depth] = arr.size
            base = None
            if collect:
                base = {ordv[k]: mapping_v[k] for k in range(depth)}
            for start in range(0, vs_all.size, _LEAF_CHUNK):
                vs = vs_all[start : start + _LEAF_CHUNK]
                rows = pool_matrix(last, vs, pref)
                counts = popcount_rows(rows)
                result.recursion_calls += int(vs.size)
                if collect:
                    u_d, u_last = ordv[depth], ordv[last]
                    for j in range(vs.size):
                        cnt = int(counts[j])
                        if not cnt:
                            continue
                        take = cnt
                        if limit is not None:
                            take = min(cnt, limit - result.num_embeddings)
                        for w_id in decode(rows[j])[:take].tolist():
                            emb = dict(base)
                            emb[u_d] = int(vs[j])
                            emb[u_last] = w_id
                            result.embeddings.append(emb)
                        if (
                            limit is not None
                            and result.num_embeddings + cnt >= limit
                        ):
                            result.num_embeddings = limit
                            result.completed = False
                            stop = True
                            break
                        result.num_embeddings += cnt
                    if stop:
                        break
                    work += int(vs.size) + int(counts.sum())
                else:
                    total = int(counts.sum())
                    if limit is not None:
                        cum = np.cumsum(counts)
                        crossing = np.nonzero(
                            result.num_embeddings + cum >= limit
                        )[0]
                        if crossing.size:
                            result.num_embeddings = limit
                            result.completed = False
                            stop = True
                            break
                    result.num_embeddings += total
                    work += int(vs.size) + total
                if deadline is not None and work >= _ENUM_STRIDE:
                    deadline.check_every(work)
                    work = 0
            continue

        if prefix_cache:
            if not cp_ok[child]:
                pref = shared_prefix(child)
                pools = pool_matrix(child, arr, pref)
                child_prefix[child] = pref
                child_pools[child] = pools
                child_live[child] = pools.any(axis=1)
                cp_ok[child] = True
            v = int(arr[i])
            ptrs[depth] = i + 1
            work += 1
            if child_live[child][i]:
                mapping_v[depth] = v
                _set_bit(used, v)
                ids[child] = decode(child_pools[child][i])
                ptrs[child] = 0
                cp_ok[child + 1] = False
                depth = child
                result.recursion_calls += 1
        else:
            # Memo disabled (bench isolation): per-sibling single-row path,
            # recomputing the prefix each time like the int kernel does.
            pref = shared_prefix(child)
            v = int(arr[i])
            ptrs[depth] = i + 1
            work += 1
            if extends[child]:
                cpool = pref & adj_by_depth[child][v]
            else:
                cpool = pref
            _clear_bit(cpool, v)
            if cpool.any():
                mapping_v[depth] = v
                _set_bit(used, v)
                ids[child] = decode(cpool)
                ptrs[child] = 0
                depth = child
                result.recursion_calls += 1
        if deadline is not None and work >= _ENUM_STRIDE:
            deadline.check_every(work)
            work = 0
    return result
