"""Generic backtracking enumeration over a candidate space.

This is the "enumeration phase" shared by all preprocessing-enumeration
matchers (GraphQL, CFL, CFQL).  Given complete candidate vertex sets Φ and
a matching order, it extends partial embeddings depth by depth; for the
vcFV verification step it is invoked with ``limit=1`` so it "returns
immediately after finding the first subgraph isomorphism" (Section III-B).

Two kernels implement the same contract:

:func:`enumerate_embeddings_iterative` (the default)
    An explicit-stack kernel over the flat arrays of a compiled order
    (:class:`repro.matching.plan.CompiledOrder`).  The used-vertex set is
    an int bitmap, deadline polls are strided over units of work rather
    than per frame, the partial intersection Φ(u) ∩ N(...) over backward
    neighbors *below the parent* is memoized per stack frame and shared by
    sibling subtrees (GraphMini-style reuse), and the deepest level is
    counted with a single popcount instead of a per-candidate loop.

:func:`enumerate_embeddings_recursive`
    The original recursive kernel, kept verbatim as the reference
    implementation for the randomized parity suite.

The matching order must be *connected*: every vertex except the first needs
at least one neighbor earlier in the order.  All orders produced in this
library satisfy that for connected query graphs, and the precondition is
checked eagerly — once per compiled plan rather than once per data graph
when a :class:`~repro.matching.plan.QueryPlan` is supplied.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field

from repro.graph.labeled_graph import Graph
from repro.matching.candidates import CandidateSets
from repro.matching.plan import QueryPlan, compile_order
from repro.utils.bitset import bit_list
from repro.utils.timing import Deadline

def _wordblock_enum_enabled() -> bool:
    """Whether ``REPRO_ENUM_KERNEL=wordblock`` opts the enumeration tree
    walk into the vectorized word-block kernel.  Off by default: the walk
    is per-node python-driven and int bitmaps win it at every scale
    measured, so the word-block backend is only routed here explicitly
    (benchmarks, parity tests, experimentation)."""
    return os.environ.get("REPRO_ENUM_KERNEL", "").strip().lower() == "wordblock"


__all__ = [
    "EnumerationResult",
    "enumerate_embeddings",
    "enumerate_embeddings_iterative",
    "enumerate_embeddings_recursive",
]

#: Units of enumeration work between deadline polls.  One unit is one
#: candidate considered (popped from a pool or counted at the deepest
#: level), so expiry is detected within ~`_CHECK_STRIDE` candidates just
#: like the recursive kernel's per-call polling, at a fraction of the cost.
_ENUM_STRIDE = 64


@dataclass
class EnumerationResult:
    """Outcome of one enumeration run.

    ``completed`` is ``False`` when the search stopped early because
    ``limit`` embeddings were found; a deadline expiry raises
    :class:`~repro.utils.errors.TimeLimitExceeded` instead of returning.
    """

    num_embeddings: int = 0
    embeddings: list[dict[int, int]] = field(default_factory=list)
    recursion_calls: int = 0
    completed: bool = True

    @property
    def found(self) -> bool:
        return self.num_embeddings > 0


def _validate_order(query: Graph, order: tuple[int, ...]) -> list[list[int]]:
    """Check the order covers all vertices connectedly; return, for each
    position, the query neighbors that appear earlier in the order.

    Compat shim: plan compilation (:func:`repro.matching.plan.compile_order`)
    performs this validation once per query; this wrapper remains for the
    recursive reference kernel and any external callers.
    """
    compiled = compile_order(query, tuple(order))
    return [
        [compiled.order[p] for p in positions] for positions in compiled.backward
    ]


def enumerate_embeddings_iterative(
    query: Graph,
    data: Graph,
    candidates: CandidateSets,
    order: tuple[int, ...] | list[int],
    limit: int | None = None,
    collect: bool = False,
    deadline: Deadline | None = None,
    plan: QueryPlan | None = None,
    prefix_cache: bool = True,
) -> EnumerationResult:
    """Iterative explicit-stack enumeration kernel (the default).

    Parameters match :func:`enumerate_embeddings`; additionally ``plan``
    supplies a pre-validated compiled order (skipping per-graph
    validation) and ``prefix_cache=False`` disables the sibling-shared
    intersection memo (used by bench-micro to isolate its effect).
    """
    order = tuple(order)
    result = EnumerationResult()
    if not order:
        # The empty query has exactly one (empty) embedding.
        result.num_embeddings = 1
        if collect:
            result.embeddings.append({})
        return result
    compiled = (
        plan.compiled_order(order) if plan is not None else compile_order(query, order)
    )
    if candidates.backend != "python":
        if _wordblock_enum_enabled():
            # Opt-in vectorized tree walk (same search semantics, batch
            # leaf level; numpy import stays lazy).
            from repro.matching.enumeration_numpy import run_wordblock_kernel

            return run_wordblock_kernel(
                query,
                data,
                candidates,
                compiled,
                result,
                limit=limit,
                collect=collect,
                deadline=deadline,
                prefix_cache=prefix_cache,
            )
        # Default: convert once and enumerate over int bitmaps.  The tree
        # walk is per-node python-driven, so big-int ops (sub-µs even at
        # 512 words) beat per-call numpy overhead at every scale measured
        # (4-12x at 1k-32k vertices); the word-block backend earns its
        # keep in the batch phases (seed filters, frontier intersections,
        # leaf counting), not here.
        candidates = candidates.to_python()
    ordv = compiled.order
    prefixes = compiled.prefix_positions
    extends = compiled.extends_previous
    n = len(ordv)
    result.recursion_calls = 1
    nbr = data.neighbor_bitmap

    if n == 1:
        pool = candidates.bits(ordv[0])
        cnt = pool.bit_count()
        if deadline is not None:
            deadline.check_every(cnt + 1)
        take = cnt if limit is None else min(cnt, limit)
        result.num_embeddings = take
        if limit is not None and cnt >= limit:
            result.completed = False
        if collect and take:
            u0 = ordv[0]
            result.embeddings = [{u0: v} for v in bit_list(pool)[:take]]
        return result

    last = n - 1
    cand_bits = [candidates.bits(u) for u in ordv]
    mapping_v = [0] * n  # data vertex committed at each depth
    pools = [0] * n  # un-tried candidate bits per live frame
    # Sibling-shared prefix memo: child_prefix[d] caches
    # Φ(order[d]) ∩ ~used ∩ ⋂ N(image of backward positions < d-1),
    # valid for the lifetime of frame d-1 (everything it reads is fixed
    # until that frame is popped and re-created).
    child_prefix = [0] * n
    child_prefix_ok = [False] * n
    used = 0
    work = 0

    pools[0] = cand_bits[0]
    depth = 0
    while depth >= 0:
        pool = pools[depth]
        if not pool:
            depth -= 1
            if depth >= 0:
                used ^= 1 << mapping_v[depth]
            continue
        low = pool & -pool
        pools[depth] = pool ^ low
        work += 1
        child = depth + 1
        if prefix_cache and child_prefix_ok[child]:
            pref = child_prefix[child]
        else:
            pref = cand_bits[child] & ~used
            for p in prefixes[child]:
                pref &= nbr(mapping_v[p])
            if prefix_cache:
                child_prefix[child] = pref
                child_prefix_ok[child] = True
        if extends[child]:
            cpool = pref & nbr(low.bit_length() - 1) & ~low
        else:
            cpool = pref & ~low
        if child == last:
            # Deepest level: the pool *is* the embedding set — count it
            # with one popcount instead of materialising each extension.
            result.recursion_calls += 1
            cnt = cpool.bit_count()
            if cnt:
                work += cnt
                if collect:
                    base = {ordv[i]: mapping_v[i] for i in range(depth)}
                    base[ordv[depth]] = low.bit_length() - 1
                    u_last = ordv[last]
                    take = cnt
                    if limit is not None:
                        take = min(cnt, limit - result.num_embeddings)
                    for w in bit_list(cpool)[:take]:
                        emb = dict(base)
                        emb[u_last] = w
                        result.embeddings.append(emb)
                if limit is not None and result.num_embeddings + cnt >= limit:
                    result.num_embeddings = limit
                    result.completed = False
                    break
                result.num_embeddings += cnt
            if deadline is not None and work >= _ENUM_STRIDE:
                deadline.check_every(work)
                work = 0
            continue
        if cpool:
            mapping_v[depth] = low.bit_length() - 1
            used |= low
            pools[child] = cpool
            child_prefix_ok[child + 1] = False
            depth = child
            result.recursion_calls += 1
        if deadline is not None and work >= _ENUM_STRIDE:
            deadline.check_every(work)
            work = 0
    return result


def enumerate_embeddings_recursive(
    query: Graph,
    data: Graph,
    candidates: CandidateSets,
    order: tuple[int, ...] | list[int],
    limit: int | None = None,
    collect: bool = False,
    deadline: Deadline | None = None,
    plan: QueryPlan | None = None,
) -> EnumerationResult:
    """The original recursive kernel, kept as the parity-test reference.

    ``plan`` is accepted for signature compatibility; the reference always
    re-validates the order itself.
    """
    del plan  # the reference deliberately takes the slow, obvious path
    if candidates.backend != "python":
        # The reference works in int bitmaps; converting up front keeps it
        # a pure oracle for the cross-backend parity suite.
        candidates = candidates.to_python()
    order = tuple(order)
    result = EnumerationResult()
    if not order:
        # The empty query has exactly one (empty) embedding.
        result.num_embeddings = 1
        if collect:
            result.embeddings.append({})
        return result
    backward = _validate_order(query, order)
    n = len(order)
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def candidates_at(i: int) -> list[int]:
        """Data vertices consistent with the partial embedding at depth i.

        The pool is Φ(u) ∩ N(image) over every already-mapped query
        neighbor — one bitmap AND per neighbor, decoded once at the end.
        """
        u = order[i]
        if i == 0:
            return list(candidates[u])
        pool = candidates.bits(u)
        for u2 in backward[i]:
            pool &= data.neighbor_bitmap(mapping[u2])
            if not pool:
                return []
        return bit_list(pool)

    def recurse(i: int) -> bool:
        """Extend the embedding at depth ``i``; returns False to abort."""
        result.recursion_calls += 1
        if deadline is not None:
            deadline.check()
        u = order[i]
        for v in candidates_at(i):
            if v in used:
                continue
            if i + 1 == n:
                result.num_embeddings += 1
                if collect:
                    final = dict(mapping)
                    final[u] = v
                    result.embeddings.append(final)
                if limit is not None and result.num_embeddings >= limit:
                    result.completed = False
                    return False
            else:
                mapping[u] = v
                used.add(v)
                keep_going = recurse(i + 1)
                del mapping[u]
                used.discard(v)
                if not keep_going:
                    return False
        return True

    recurse(0)
    return result


def enumerate_embeddings(
    query: Graph,
    data: Graph,
    candidates: CandidateSets,
    order: tuple[int, ...] | list[int],
    limit: int | None = None,
    collect: bool = False,
    deadline: Deadline | None = None,
    plan: QueryPlan | None = None,
) -> EnumerationResult:
    """Enumerate subgraph isomorphisms from ``query`` to ``data``.

    Parameters
    ----------
    candidates:
        A *complete* candidate vertex set (Definition III.1).  Correctness
        only needs completeness; tighter sets just prune more.
    order:
        Connected matching order over the query vertices.
    limit:
        Stop after this many embeddings (``1`` = the verification step).
    collect:
        Keep the embeddings themselves (as ``{query vertex: data vertex}``
        dicts) rather than only counting.
    plan:
        Optional compiled :class:`~repro.matching.plan.QueryPlan`; when
        given, the order's validation and backward structure come from the
        plan's memo instead of being rebuilt for this data graph.
    """
    return enumerate_embeddings_iterative(
        query,
        data,
        candidates,
        order,
        limit=limit,
        collect=collect,
        deadline=deadline,
        plan=plan,
    )
