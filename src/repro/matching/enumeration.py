"""Generic backtracking enumeration over a candidate space.

This is the "enumeration phase" shared by all preprocessing-enumeration
matchers (GraphQL, CFL, CFQL).  Given complete candidate vertex sets Φ and
a matching order, it recursively extends partial embeddings; for the vcFV
verification step it is invoked with ``limit=1`` so it "returns immediately
after finding the first subgraph isomorphism" (Section III-B).

The matching order must be *connected*: every vertex except the first needs
at least one neighbor earlier in the order.  All orders produced in this
library satisfy that for connected query graphs, and the precondition is
checked eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.labeled_graph import Graph
from repro.matching.candidates import CandidateSets
from repro.utils.bitset import bit_list
from repro.utils.timing import Deadline

__all__ = ["EnumerationResult", "enumerate_embeddings"]


@dataclass
class EnumerationResult:
    """Outcome of one enumeration run.

    ``completed`` is ``False`` when the search stopped early because
    ``limit`` embeddings were found; a deadline expiry raises
    :class:`~repro.utils.errors.TimeLimitExceeded` instead of returning.
    """

    num_embeddings: int = 0
    embeddings: list[dict[int, int]] = field(default_factory=list)
    recursion_calls: int = 0
    completed: bool = True

    @property
    def found(self) -> bool:
        return self.num_embeddings > 0


def _validate_order(query: Graph, order: tuple[int, ...]) -> list[list[int]]:
    """Check the order covers all vertices connectedly; return, for each
    position, the query neighbors that appear earlier in the order."""
    if sorted(order) != list(query.vertices()):
        raise ValueError(f"order {order!r} is not a permutation of the query vertices")
    position = {u: i for i, u in enumerate(order)}
    backward: list[list[int]] = []
    for i, u in enumerate(order):
        earlier = [u2 for u2 in query.neighbors(u) if position[u2] < i]
        if i > 0 and not earlier:
            raise ValueError(
                f"matching order is not connected: {u} has no earlier neighbor"
            )
        backward.append(earlier)
    return backward


def enumerate_embeddings(
    query: Graph,
    data: Graph,
    candidates: CandidateSets,
    order: tuple[int, ...] | list[int],
    limit: int | None = None,
    collect: bool = False,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Enumerate subgraph isomorphisms from ``query`` to ``data``.

    Parameters
    ----------
    candidates:
        A *complete* candidate vertex set (Definition III.1).  Correctness
        only needs completeness; tighter sets just prune more.
    order:
        Connected matching order over the query vertices.
    limit:
        Stop after this many embeddings (``1`` = the verification step).
    collect:
        Keep the embeddings themselves (as ``{query vertex: data vertex}``
        dicts) rather than only counting.
    """
    order = tuple(order)
    result = EnumerationResult()
    if not order:
        # The empty query has exactly one (empty) embedding.
        result.num_embeddings = 1
        if collect:
            result.embeddings.append({})
        return result
    backward = _validate_order(query, order)
    n = len(order)
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def candidates_at(i: int) -> list[int]:
        """Data vertices consistent with the partial embedding at depth i.

        The pool is Φ(u) ∩ N(image) over every already-mapped query
        neighbor — one bitmap AND per neighbor, decoded once at the end.
        """
        u = order[i]
        if i == 0:
            return list(candidates[u])
        pool = candidates.bits(u)
        for u2 in backward[i]:
            pool &= data.neighbor_bitmap(mapping[u2])
            if not pool:
                return []
        return bit_list(pool)

    def recurse(i: int) -> bool:
        """Extend the embedding at depth ``i``; returns False to abort."""
        result.recursion_calls += 1
        if deadline is not None:
            deadline.check()
        u = order[i]
        for v in candidates_at(i):
            if v in used:
                continue
            if i + 1 == n:
                result.num_embeddings += 1
                if collect:
                    final = dict(mapping)
                    final[u] = v
                    result.embeddings.append(final)
                if limit is not None and result.num_embeddings >= limit:
                    result.completed = False
                    return False
            else:
                mapping[u] = v
                used.add(v)
                keep_going = recurse(i + 1)
                del mapping[u]
                used.discard(v)
                if not keep_going:
                    return False
        return True

    recurse(0)
    return result
