"""Candidate vertex sets (Definition III.1) and the basic seed filters.

Every preprocessing-enumeration matcher produces a *complete* candidate
vertex set Φ: for every query vertex ``u``, ``Φ(u)`` must contain every data
vertex that ``u`` maps to in any subgraph isomorphism.  Completeness is what
makes the vcFV filtering step (Algorithm 2, Proposition III.1) sound: an
empty ``Φ(u)`` proves the data graph cannot contain the query.

Representation: one bitmap per query vertex, keyed by the dense data
vertex ids, in whichever :class:`~repro.utils.bitset.BitsetKernel` backend
was selected for the data graph — python big ints (the default for
paper-scale graphs) or numpy ``uint64`` word blocks (``auto``-selected for
large graphs, where the enumeration kernel batches whole frontiers).  The
single canonical store gives O(1) membership, one-instruction
intersection for the enumeration phase, and costs one bit per data vertex.

The two seed filters here are the standard ones from the literature:

* LDF (label and degree filter): ``L(v) = L(u)`` and ``d(v) ≥ d(u)``;
* NLF (neighbor label frequency filter): LDF plus, for every label ``l``,
  ``|N(u) with label l| ≤ |N(v) with label l|`` — GraphQL's "neighborhood
  profile".

Both are complete because a subgraph isomorphism preserves labels and maps
the neighbors of ``u`` injectively onto label-preserving neighbors of
``φ(u)``.  Each comes in two shapes: ``*_candidate_bits`` (bitmaps, the
hot path — a handful of ANDs against the data graph's memoized profiles,
in the requested backend) and the legacy list-of-lists form on top.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.graph.labeled_graph import Graph
from repro.utils.bitset import (
    BitsetKernel,
    bit_list,
    get_kernel,
    pack_bits,
    python_kernel,
)
from repro.utils.timing import Deadline

__all__ = [
    "CandidateSets",
    "ldf_candidate_bits",
    "ldf_candidates",
    "nlf_candidate_bits",
    "nlf_candidates",
    "select_kernel",
]

#: Query vertices between deadline polls in the seed filters.  Both
#: filters stride identically: one poll per 8 vertices costs a fraction
#: of per-vertex polling while still bounding overshoot to 8 bitmap ANDs.
_FILTER_STRIDE = 8


def select_kernel(data: Graph, backend: str | None = None) -> BitsetKernel:
    """The bitset kernel to use for candidate sets over ``data``.

    Resolves the process-default backend (``REPRO_BITSET_BACKEND`` /
    ``--bitset-backend``) with ``auto`` keyed to the data graph's size,
    so small paper-scale graphs keep the big-int backend.
    """
    return get_kernel(backend, num_vertices=data.num_vertices)


class CandidateSets:
    """Φ — one candidate vertex set per query vertex.

    Immutable bitmap-backed view with O(1) membership testing.  Construct
    with one iterable of data vertices per query vertex (in query-vertex
    order), or from ready-made bitmaps via :meth:`from_bitmaps`.  The
    ``kernel`` decides the bitmap representation; ``num_vertices`` (the
    data graph's vertex count) is required for word-block backends and
    ignored by the python backend.
    """

    __slots__ = ("_kernel", "_num_vertices", "_bits", "_sizes")

    def __init__(
        self,
        sets: Iterable[Iterable[int]],
        kernel: BitsetKernel | None = None,
        num_vertices: int | None = None,
    ) -> None:
        kernel = kernel if kernel is not None else python_kernel()
        self._kernel = kernel
        self._num_vertices = num_vertices if num_vertices is not None else 0
        if kernel.name == "python":
            self._bits = tuple(pack_bits(s) for s in sets)
        else:
            if num_vertices is None:
                raise ValueError(
                    "num_vertices is required for word-block bitset backends"
                )
            self._bits = tuple(kernel.pack(s, num_vertices) for s in sets)
        self._sizes: tuple[int, ...] = tuple(
            kernel.popcount(b) for b in self._bits
        )

    @classmethod
    def from_bitmaps(
        cls,
        bitmaps: Sequence,
        kernel: BitsetKernel | None = None,
        num_vertices: int | None = None,
    ) -> "CandidateSets":
        """Wrap bitmaps produced by a bitset filter.

        ``bitmaps`` may be int bitmaps (converted when ``kernel`` is a
        word-block backend — the one boundary crossing matchers with
        int-bitmap filter pipelines pay) or bitmaps already native to
        ``kernel`` (no re-encoding).
        """
        kernel = kernel if kernel is not None else python_kernel()
        obj = object.__new__(cls)
        obj._kernel = kernel
        obj._num_vertices = num_vertices if num_vertices is not None else 0
        if kernel.name != "python" and bitmaps and isinstance(bitmaps[0], int):
            if num_vertices is None:
                raise ValueError(
                    "num_vertices is required to convert int bitmaps to a "
                    "word-block backend"
                )
            obj._bits = tuple(kernel.from_int(b, num_vertices) for b in bitmaps)
        else:
            obj._bits = tuple(bitmaps)
        obj._sizes = tuple(kernel.popcount(b) for b in obj._bits)
        return obj

    # ------------------------------------------------------------------
    # Backend
    # ------------------------------------------------------------------

    @property
    def kernel(self) -> BitsetKernel:
        return self._kernel

    @property
    def backend(self) -> str:
        """The bitset backend name these sets are stored in."""
        return self._kernel.name

    @property
    def num_vertices(self) -> int:
        """The data graph's vertex count (0 when unknown, python backend)."""
        return self._num_vertices

    def to_backend(
        self, kernel: BitsetKernel, num_vertices: int | None = None
    ) -> "CandidateSets":
        """These sets re-encoded under another kernel (identity if same)."""
        if kernel.name == self._kernel.name:
            return self
        n = num_vertices if num_vertices is not None else self._num_vertices
        ints = [self._kernel.to_int(b) for b in self._bits]
        if kernel.name == "python":
            return CandidateSets.from_bitmaps(ints)
        return CandidateSets.from_bitmaps(ints, kernel=kernel, num_vertices=n)

    def to_python(self) -> "CandidateSets":
        """These sets in the pure-python int-bitmap backend."""
        return self.to_backend(python_kernel())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._bits)

    def __getitem__(self, u: int) -> tuple[int, ...]:
        """Φ(u) as an ascending tuple of data vertex ids (decoded view)."""
        return tuple(self._kernel.bit_list(self._bits[u]))

    def bits(self, u: int):
        """Φ(u) as its canonical backend-native bitmap."""
        return self._bits[u]

    def int_bits(self, u: int) -> int:
        """Φ(u) as an int bitmap regardless of backend (converted view)."""
        return self._kernel.to_int(self._bits[u])

    def as_set(self, u: int) -> frozenset[int]:
        """Φ(u) as a frozenset (decoded view, built on demand)."""
        return frozenset(self._kernel.bit_list(self._bits[u]))

    def contains(self, u: int, v: int) -> bool:
        return self._kernel.test(self._bits[u], v)

    @property
    def all_nonempty(self) -> bool:
        """Whether every Φ(u) is non-empty (the vcFV filtering test)."""
        kernel = self._kernel
        return all(kernel.any(b) for b in self._bits)

    def sizes(self) -> tuple[int, ...]:
        return self._sizes

    @property
    def total_candidates(self) -> int:
        return sum(self._sizes)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self, word_bytes: int = 4) -> int:
        """Footprint as the paper counts auxiliary structures: one word per
        stored candidate (Tables VII and IX report the candidate vertex
        sets of vcFV algorithms this way).  Backend-independent by design
        so the reproduction paths stay comparable; see
        :meth:`backend_memory_bytes` for the true footprint."""
        return word_bytes * self.total_candidates

    def backend_memory_bytes(self) -> int:
        """Backend-accurate retained bytes of the stored bitmaps: fixed
        ``ceil(n/64)`` words per set for word-block backends, the occupied
        bit span for big ints."""
        kernel = self._kernel
        return sum(kernel.memory_bytes(b) for b in self._bits)

    # ------------------------------------------------------------------
    # Pickling (backend-agnostic wire form)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Little-endian word payloads — compact (no bignum pickle framing,
        no ndarray metadata per set) and revivable by either backend, so
        candidate sets cross the worker-pool boundary even when the two
        sides disagree about numpy's availability."""
        return {
            "backend": self._kernel.name,
            "num_vertices": self._num_vertices,
            "blobs": [self._kernel.to_bytes(b) for b in self._bits],
        }

    def __setstate__(self, state: dict) -> None:
        kernel = get_kernel(
            state["backend"] if state["backend"] != "python" else "python",
            num_vertices=state["num_vertices"] or None,
        )
        self._kernel = kernel
        self._num_vertices = state["num_vertices"]
        n = self._num_vertices
        self._bits = tuple(
            kernel.from_bytes(blob, n if n else 8 * len(blob))
            for blob in state["blobs"]
        )
        self._sizes = tuple(kernel.popcount(b) for b in self._bits)

    def __repr__(self) -> str:
        return f"<CandidateSets backend={self.backend} sizes={self.sizes()}>"


def ldf_candidate_bits(
    query: Graph,
    data: Graph,
    deadline: Deadline | None = None,
    kernel: BitsetKernel | None = None,
) -> list:
    """Label-and-degree seed candidate bitmaps for every query vertex.

    With the default (python) kernel the bitmaps are ints from the data
    graph's memoized int profiles — exact legacy behavior.  A word-block
    kernel computes each Φ(u) from the graph's vectorized profile rows
    instead.
    """
    if kernel is not None and kernel.name != "python":
        profile = data.bitset_profile(kernel)
        result = []
        for u in query.vertices():
            if deadline is not None:
                deadline.check_every(_FILTER_STRIDE)
            result.append(
                kernel.and_(
                    profile.label_row(query.label(u)),
                    profile.degree_row(query.degree(u)),
                )
            )
        return result
    result: list[int] = []
    for u in query.vertices():
        if deadline is not None:
            deadline.check_every(_FILTER_STRIDE)
        result.append(
            data.label_bitmap(query.label(u)) & data.degree_bitmap(query.degree(u))
        )
    return result


def nlf_candidate_bits(
    query: Graph,
    data: Graph,
    deadline: Deadline | None = None,
    plan=None,
    kernel: BitsetKernel | None = None,
) -> list:
    """Neighbor-label-frequency seed candidate bitmaps (GraphQL's filter).

    Each Φ(u) is the AND of the data graph's memoized label, degree and
    per-label NLF threshold bitmaps — no per-vertex profile comparisons.
    A compiled :class:`~repro.matching.plan.QueryPlan` supplies the query's
    label/degree/NLF constraint arrays pre-flattened; ``kernel`` selects
    the bitmap backend the thresholds are taken from.
    """
    if plan is not None:
        # The plan's flat constraint arrays index directly — no per-vertex
        # tuple materialization on the hot path.
        labels, degrees = plan.labels, plan.degrees
        off = plan.nlf_offsets
        nlf_items = [
            [
                (plan.nlf_labels[k], plan.nlf_counts[k])
                for k in range(off[u], off[u + 1])
            ]
            for u in query.vertices()
        ]
    else:
        labels = tuple(query.labels)
        degrees = tuple(query.degree(u) for u in query.vertices())
        nlf_items = tuple(
            tuple(query.neighbor_label_counts(u).items()) for u in query.vertices()
        )
    if kernel is not None and kernel.name != "python":
        profile = data.bitset_profile(kernel)
        result = []
        for u in query.vertices():
            if deadline is not None:
                deadline.check_every(_FILTER_STRIDE)
            bits = kernel.and_(
                profile.label_row(labels[u]), profile.degree_row(degrees[u])
            )
            if kernel.any(bits):
                for lab, need in nlf_items[u]:
                    bits = kernel.and_(bits, profile.nlf_row(lab, need))
                    if not kernel.any(bits):
                        break
            result.append(bits)
        return result
    result: list[int] = []
    for u in query.vertices():
        if deadline is not None:
            deadline.check_every(_FILTER_STRIDE)
        bits = data.label_bitmap(labels[u]) & data.degree_bitmap(degrees[u])
        if bits:
            for lab, need in nlf_items[u]:
                bits &= data.nlf_bitmap(lab, need)
                if not bits:
                    break
        result.append(bits)
    return result


def ldf_candidates(
    query: Graph, data: Graph, deadline: Deadline | None = None
) -> list[list[int]]:
    """Label-and-degree seed candidates as ascending id lists."""
    return [bit_list(b) for b in ldf_candidate_bits(query, data, deadline=deadline)]


def nlf_candidates(
    query: Graph, data: Graph, deadline: Deadline | None = None
) -> list[list[int]]:
    """Neighbor-label-frequency seed candidates as ascending id lists."""
    return [bit_list(b) for b in nlf_candidate_bits(query, data, deadline=deadline)]
