"""Candidate vertex sets (Definition III.1) and the basic seed filters.

Every preprocessing-enumeration matcher produces a *complete* candidate
vertex set Φ: for every query vertex ``u``, ``Φ(u)`` must contain every data
vertex that ``u`` maps to in any subgraph isomorphism.  Completeness is what
makes the vcFV filtering step (Algorithm 2, Proposition III.1) sound: an
empty ``Φ(u)`` proves the data graph cannot contain the query.

The two seed filters here are the standard ones from the literature:

* LDF (label and degree filter): ``L(v) = L(u)`` and ``d(v) ≥ d(u)``;
* NLF (neighbor label frequency filter): LDF plus, for every label ``l``,
  ``|N(u) with label l| ≤ |N(v) with label l|`` — GraphQL's "neighborhood
  profile".

Both are complete because a subgraph isomorphism preserves labels and maps
the neighbors of ``u`` injectively onto label-preserving neighbors of
``φ(u)``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.labeled_graph import Graph
from repro.utils.timing import Deadline

__all__ = ["CandidateSets", "ldf_candidates", "nlf_candidates"]


class CandidateSets:
    """Φ — one candidate vertex set per query vertex.

    Immutable view over per-vertex sorted tuples with O(1) membership
    testing.  Construct with one iterable of data vertices per query
    vertex, in query-vertex order.
    """

    __slots__ = ("_lists", "_sets")

    def __init__(self, sets: Iterable[Iterable[int]]) -> None:
        self._lists: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in sets
        )
        self._sets: tuple[frozenset[int], ...] = tuple(
            frozenset(lst) for lst in self._lists
        )

    def __len__(self) -> int:
        return len(self._lists)

    def __getitem__(self, u: int) -> tuple[int, ...]:
        return self._lists[u]

    def as_set(self, u: int) -> frozenset[int]:
        return self._sets[u]

    def contains(self, u: int, v: int) -> bool:
        return v in self._sets[u]

    @property
    def all_nonempty(self) -> bool:
        """Whether every Φ(u) is non-empty (the vcFV filtering test)."""
        return all(self._lists)

    def sizes(self) -> tuple[int, ...]:
        return tuple(len(lst) for lst in self._lists)

    @property
    def total_candidates(self) -> int:
        return sum(len(lst) for lst in self._lists)

    def memory_bytes(self, word_bytes: int = 4) -> int:
        """Footprint as the paper counts auxiliary structures: one word per
        stored candidate (Tables VII and IX report the candidate vertex
        sets of vcFV algorithms this way)."""
        return word_bytes * self.total_candidates

    def __repr__(self) -> str:
        return f"<CandidateSets sizes={self.sizes()}>"


def ldf_candidates(query: Graph, data: Graph, deadline: Deadline | None = None) -> list[list[int]]:
    """Label-and-degree seed candidates for every query vertex."""
    result: list[list[int]] = []
    for u in query.vertices():
        if deadline is not None:
            deadline.check()
        du = query.degree(u)
        result.append(
            [v for v in data.vertices_with_label(query.label(u)) if data.degree(v) >= du]
        )
    return result


def nlf_candidates(query: Graph, data: Graph, deadline: Deadline | None = None) -> list[list[int]]:
    """Neighbor-label-frequency seed candidates (GraphQL's profile filter)."""
    result: list[list[int]] = []
    for u in query.vertices():
        du = query.degree(u)
        profile = query.neighbor_label_counts(u)
        survivors: list[int] = []
        for v in data.vertices_with_label(query.label(u)):
            if deadline is not None:
                deadline.check()
            if data.degree(v) < du:
                continue
            counts = data.neighbor_label_counts(v)
            if all(counts.get(lab, 0) >= need for lab, need in profile.items()):
                survivors.append(v)
        result.append(survivors)
    return result
