"""Candidate vertex sets (Definition III.1) and the basic seed filters.

Every preprocessing-enumeration matcher produces a *complete* candidate
vertex set Φ: for every query vertex ``u``, ``Φ(u)`` must contain every data
vertex that ``u`` maps to in any subgraph isomorphism.  Completeness is what
makes the vcFV filtering step (Algorithm 2, Proposition III.1) sound: an
empty ``Φ(u)`` proves the data graph cannot contain the query.

Representation: one int bitmap per query vertex, keyed by the dense data
vertex ids (see :mod:`repro.utils.bitset`).  The single canonical store
gives O(1) membership (one shift + mask), one-instruction intersection for
the enumeration phase, and costs one bit per data vertex instead of the
tuple-plus-frozenset pair an earlier revision kept.

The two seed filters here are the standard ones from the literature:

* LDF (label and degree filter): ``L(v) = L(u)`` and ``d(v) ≥ d(u)``;
* NLF (neighbor label frequency filter): LDF plus, for every label ``l``,
  ``|N(u) with label l| ≤ |N(v) with label l|`` — GraphQL's "neighborhood
  profile".

Both are complete because a subgraph isomorphism preserves labels and maps
the neighbors of ``u`` injectively onto label-preserving neighbors of
``φ(u)``.  Each comes in two shapes: ``*_candidate_bits`` (bitmaps, the
hot path — a handful of ANDs against the data graph's memoized profiles)
and the legacy list-of-lists form built on top of it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.graph.labeled_graph import Graph
from repro.utils.bitset import bit_list, pack_bits
from repro.utils.timing import Deadline

__all__ = [
    "CandidateSets",
    "ldf_candidate_bits",
    "ldf_candidates",
    "nlf_candidate_bits",
    "nlf_candidates",
]


class CandidateSets:
    """Φ — one candidate vertex set per query vertex.

    Immutable bitmap-backed view with O(1) membership testing.  Construct
    with one iterable of data vertices per query vertex (in query-vertex
    order), or from ready-made bitmaps via :meth:`from_bitmaps`.
    """

    __slots__ = ("_bits", "_sizes")

    def __init__(self, sets: Iterable[Iterable[int]]) -> None:
        self._bits: tuple[int, ...] = tuple(pack_bits(s) for s in sets)
        self._sizes: tuple[int, ...] = tuple(b.bit_count() for b in self._bits)

    @classmethod
    def from_bitmaps(cls, bitmaps: Sequence[int]) -> "CandidateSets":
        """Wrap bitmaps produced by a bitset filter (no re-encoding)."""
        obj = object.__new__(cls)
        obj._bits = tuple(bitmaps)
        obj._sizes = tuple(b.bit_count() for b in obj._bits)
        return obj

    def __len__(self) -> int:
        return len(self._bits)

    def __getitem__(self, u: int) -> tuple[int, ...]:
        """Φ(u) as an ascending tuple of data vertex ids (decoded view)."""
        return tuple(bit_list(self._bits[u]))

    def bits(self, u: int) -> int:
        """Φ(u) as its canonical bitmap."""
        return self._bits[u]

    def as_set(self, u: int) -> frozenset[int]:
        """Φ(u) as a frozenset (decoded view, built on demand)."""
        return frozenset(bit_list(self._bits[u]))

    def contains(self, u: int, v: int) -> bool:
        return (self._bits[u] >> v) & 1 == 1

    @property
    def all_nonempty(self) -> bool:
        """Whether every Φ(u) is non-empty (the vcFV filtering test)."""
        return all(self._bits)

    def sizes(self) -> tuple[int, ...]:
        return self._sizes

    @property
    def total_candidates(self) -> int:
        return sum(self._sizes)

    def memory_bytes(self, word_bytes: int = 4) -> int:
        """Footprint as the paper counts auxiliary structures: one word per
        stored candidate (Tables VII and IX report the candidate vertex
        sets of vcFV algorithms this way)."""
        return word_bytes * self.total_candidates

    def __repr__(self) -> str:
        return f"<CandidateSets sizes={self.sizes()}>"


def ldf_candidate_bits(
    query: Graph, data: Graph, deadline: Deadline | None = None
) -> list[int]:
    """Label-and-degree seed candidate bitmaps for every query vertex."""
    result: list[int] = []
    for u in query.vertices():
        if deadline is not None:
            deadline.check()
        result.append(
            data.label_bitmap(query.label(u)) & data.degree_bitmap(query.degree(u))
        )
    return result


def nlf_candidate_bits(
    query: Graph,
    data: Graph,
    deadline: Deadline | None = None,
    plan=None,
) -> list[int]:
    """Neighbor-label-frequency seed candidate bitmaps (GraphQL's filter).

    Each Φ(u) is the AND of the data graph's memoized label, degree and
    per-label NLF threshold bitmaps — no per-vertex profile comparisons.
    A compiled :class:`~repro.matching.plan.QueryPlan` supplies the query's
    label/degree/NLF constraint arrays pre-flattened.
    """
    if plan is not None:
        labels, degrees, nlf_items = plan.labels, plan.degrees, plan.nlf_items
    else:
        labels = tuple(query.labels)
        degrees = tuple(query.degree(u) for u in query.vertices())
        nlf_items = tuple(
            tuple(query.neighbor_label_counts(u).items()) for u in query.vertices()
        )
    result: list[int] = []
    for u in query.vertices():
        if deadline is not None:
            deadline.check_every(8)
        bits = data.label_bitmap(labels[u]) & data.degree_bitmap(degrees[u])
        if bits:
            for lab, need in nlf_items[u]:
                bits &= data.nlf_bitmap(lab, need)
                if not bits:
                    break
        result.append(bits)
    return result


def ldf_candidates(
    query: Graph, data: Graph, deadline: Deadline | None = None
) -> list[list[int]]:
    """Label-and-degree seed candidates as ascending id lists."""
    return [bit_list(b) for b in ldf_candidate_bits(query, data, deadline=deadline)]


def nlf_candidates(
    query: Graph, data: Graph, deadline: Deadline | None = None
) -> list[list[int]]:
    """Neighbor-label-frequency seed candidates as ascending id lists."""
    return [bit_list(b) for b in nlf_candidate_bits(query, data, deadline=deadline)]
