"""Ullmann's algorithm (JACM 1976), the original direct-enumeration
subgraph isomorphism search.

Included as the historical baseline of the direct-enumeration family
(Section II-B2).  The candidate matrix M maps each query vertex to its
feasible data vertices (label + degree), and Ullmann's *refinement*
procedure runs after every tentative assignment: a candidate ``v`` for
``u`` survives only if every neighbor of ``u`` still has a candidate
adjacent to ``v``.  Refinement is applied to a copied matrix per search
level, exactly as in the original formulation (which makes the algorithm
memory-hungry and slow — the property the later literature improved on).
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.matching.base import MatchOutcome, SubgraphMatcher
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline, Timer

__all__ = ["UllmannMatcher"]


class UllmannMatcher(SubgraphMatcher):
    """Ullmann's candidate-matrix search with per-level refinement."""

    name = "Ullmann"

    def run(
        self,
        query: Graph,
        data: Graph,
        limit: int | None = None,
        collect: bool = False,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> MatchOutcome:
        del plan  # direct enumeration derives nothing a plan could carry
        outcome = MatchOutcome()
        if query.num_vertices == 0:
            outcome.found = True
            outcome.num_embeddings = 1
            if collect:
                outcome.embeddings.append({})
            return outcome

        nq = query.num_vertices
        matrix: list[set[int]] = []
        for u in query.vertices():
            du = query.degree(u)
            matrix.append(
                {
                    v
                    for v in data.vertices_with_label(query.label(u))
                    if data.degree(v) >= du
                }
            )
        if not all(matrix):
            return outcome

        mapping = [-1] * nq
        used: set[int] = set()

        def refine(m: list[set[int]]) -> bool:
            """Ullmann's refinement to a local fixpoint; False if some row
            becomes empty."""
            changed = True
            while changed:
                changed = False
                for u in range(nq):
                    if mapping[u] >= 0:
                        continue
                    dead = set()
                    for v in m[u]:
                        nbrs_v = data.neighbor_set(v)
                        for u2 in query.neighbors(u):
                            row = m[u2] if mapping[u2] < 0 else {mapping[u2]}
                            if len(nbrs_v) <= len(row):
                                ok = any(w in row for w in nbrs_v)
                            else:
                                ok = any(w in nbrs_v for w in row)
                            if not ok:
                                dead.add(v)
                                break
                    if dead:
                        m[u] -= dead
                        if not m[u]:
                            return False
                        changed = True
            return True

        def recurse(u: int, m: list[set[int]]) -> bool:
            outcome.recursion_calls += 1
            if deadline is not None:
                deadline.check()
            if u == nq:
                outcome.num_embeddings += 1
                if collect:
                    outcome.embeddings.append({w: mapping[w] for w in range(nq)})
                if limit is not None and outcome.num_embeddings >= limit:
                    outcome.completed = False
                    return False
                return True
            for v in sorted(m[u]):
                if v in used:
                    continue
                mapping[u] = v
                used.add(v)
                child = [set(row) for row in m]
                child[u] = {v}
                if refine(child) and not recurse(u + 1, child):
                    mapping[u] = -1
                    used.discard(v)
                    return False
                mapping[u] = -1
                used.discard(v)
            return True

        with Timer() as t:
            if refine(matrix):
                recurse(0, matrix)
        outcome.enumeration_time = t.elapsed
        outcome.found = outcome.num_embeddings > 0
        return outcome
