"""TurboIso (Han, Lee & Lee, SIGMOD 2013) — candidate-region matching.

The third leading preprocessing-enumeration algorithm discussed by the
paper (Section II-B2).  TurboIso picks a selective start vertex, explores
one *candidate region* per start-vertex candidate — a tree-shaped
projection of the query rooted at that data vertex — and enumerates inside
each region separately, cheapest region first.  The region structure gives
accurate per-region cardinalities for the path-based matching order.

Simplification vs. the original (documented in DESIGN.md): the NEC
(neighborhood equivalence class) query-vertex merging is omitted — it is a
constant-factor optimisation for queries with symmetric leaves and does
not affect the answer set.

The matcher exposes the standard decomposition too: ``build_candidates``
returns the union of all region candidate sets (a complete candidate
vertex set in the Definition III.1 sense), which is what the vcFV pipeline
consumes, while ``run`` performs the per-region enumeration that is
TurboIso's hallmark.
"""

from __future__ import annotations

from repro.graph.algorithms import BFSTree, bfs_tree, two_core
from repro.graph.labeled_graph import Graph
from repro.matching.base import MatchOutcome, PreprocessingMatcher
from repro.matching.candidates import CandidateSets, select_kernel
from repro.matching.cfl import _adjacent_to_some
from repro.matching.enumeration import enumerate_embeddings
from repro.matching.ordering import path_based_order
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline, Timer

__all__ = ["TurboIsoMatcher"]


class TurboIsoMatcher(PreprocessingMatcher):
    """Candidate-region matcher with per-region enumeration."""

    name = "TurboIso"

    # ------------------------------------------------------------------
    # Region construction
    # ------------------------------------------------------------------

    @staticmethod
    def _seed_candidates(query: Graph, data: Graph) -> list[list[int]]:
        result: list[list[int]] = []
        for u in query.vertices():
            du = query.degree(u)
            result.append(
                [
                    v
                    for v in data.vertices_with_label(query.label(u))
                    if data.degree(v) >= du
                ]
            )
        return result

    @staticmethod
    def _select_start(query: Graph, seeds: list[list[int]]) -> int:
        """argmin |C_ini(u)| / deg(u) — TurboIso's start-vertex rule."""
        return min(
            query.vertices(),
            key=lambda u: (len(seeds[u]) / max(query.degree(u), 1), u),
        )

    def _explore_region(
        self,
        query: Graph,
        data: Graph,
        tree: BFSTree,
        start_vertex: int,
        deadline: Deadline | None,
    ) -> list[set[int]] | None:
        """Candidate region rooted at ``start_vertex``; None if dead."""
        region: list[set[int]] = [set() for _ in query.vertices()]
        region[tree.root] = {start_vertex}
        visit_rank = {u: i for i, u in enumerate(tree.order)}
        for u in tree.order[1:]:
            if deadline is not None:
                deadline.check()
            parent = tree.parent[u]
            label_u = query.label(u)
            degree_u = query.degree(u)
            earlier_nbrs = [
                u2 for u2 in query.neighbors(u)
                if visit_rank[u2] < visit_rank[u] and u2 != parent
            ]
            survivors: set[int] = set()
            for vp in region[parent]:
                for v in data.neighbors_with_label(vp, label_u):
                    if v in survivors or data.degree(v) < degree_u:
                        continue
                    if all(
                        _adjacent_to_some(data, v, region[u2])
                        for u2 in earlier_nbrs
                    ):
                        survivors.add(v)
            if not survivors:
                return None
            region[u] = survivors
        return region

    def _regions(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None,
        plan: QueryPlan | None = None,
    ) -> tuple[BFSTree, list[list[set[int]]]] | None:
        seeds = self._seed_candidates(query, data)
        if not all(seeds):
            return None
        start = self._select_start(query, seeds)
        tree = plan.bfs_tree(start) if plan is not None else bfs_tree(query, start)
        regions = []
        for v_s in seeds[start]:
            region = self._explore_region(query, data, tree, v_s, deadline)
            if region is not None:
                regions.append(region)
        if not regions:
            return None
        return tree, regions

    # ------------------------------------------------------------------
    # Standard decomposition (vcFV integration)
    # ------------------------------------------------------------------

    def build_candidates(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> CandidateSets | None:
        explored = self._regions(query, data, deadline, plan=plan)
        if explored is None:
            return None
        tree, regions = explored
        union: list[set[int]] = [set() for _ in query.vertices()]
        for region in regions:
            for u in query.vertices():
                union[u] |= region[u]
        self._last_exploration = (query, tree, regions)
        return CandidateSets(
            union, kernel=select_kernel(data), num_vertices=data.num_vertices
        )

    def matching_order(
        self,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
        plan: QueryPlan | None = None,
    ) -> tuple[int, ...]:
        cached = getattr(self, "_last_exploration", None)
        if cached is not None and cached[0] is query:
            tree = cached[1]
        else:
            seeds = [list(candidates[u]) for u in query.vertices()]
            start = self._select_start(query, seeds)
            tree = plan.bfs_tree(start) if plan is not None else bfs_tree(query, start)
        core = plan.two_core() if plan is not None else two_core(query)
        return path_based_order(query, tree, candidates, core=core)

    # ------------------------------------------------------------------
    # Per-region enumeration (TurboIso's own run)
    # ------------------------------------------------------------------

    def run(
        self,
        query: Graph,
        data: Graph,
        limit: int | None = None,
        collect: bool = False,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> MatchOutcome:
        outcome = MatchOutcome()
        if query.num_vertices == 0:
            outcome.found = True
            outcome.num_embeddings = 1
            if collect:
                outcome.embeddings.append({})
            return outcome
        with Timer() as t_filter:
            explored = self._regions(query, data, deadline, plan=plan)
        outcome.filter_time = t_filter.elapsed
        if explored is None:
            outcome.filtered_out = True
            return outcome
        tree, regions = explored
        # Cheapest region first: enumeration in small regions either
        # finishes instantly or proves the region empty early.
        regions.sort(key=lambda r: sum(len(s) for s in r))
        core = plan.two_core() if plan is not None else two_core(query)

        with Timer() as t_enum:
            for region in regions:
                if limit is not None and outcome.num_embeddings >= limit:
                    break
                phi = CandidateSets(
                    region,
                    kernel=select_kernel(data),
                    num_vertices=data.num_vertices,
                )
                order = path_based_order(query, tree, phi, core=core)
                remaining = (
                    None if limit is None else limit - outcome.num_embeddings
                )
                result = enumerate_embeddings(
                    query, data, phi, order,
                    limit=remaining, collect=collect, deadline=deadline, plan=plan,
                )
                outcome.num_embeddings += result.num_embeddings
                outcome.embeddings.extend(result.embeddings)
                outcome.recursion_calls += result.recursion_calls
                if not result.completed:
                    outcome.completed = False
        outcome.enumeration_time = t_enum.elapsed
        outcome.found = outcome.num_embeddings > 0
        return outcome
