"""SPath (Zhao & Han, PVLDB 2010) — signature-based direct enumeration.

The last member of the paper's direct-enumeration list (Section II-B2).
SPath filters candidate vertices with *neighborhood signatures*: for every
vertex, the number of vertices of each label within distance 1..k.  A data
vertex can host a query vertex only if its signature dominates the query
vertex's (an embedding maps the ≤d-neighborhood of ``u`` injectively into
the ≤d-neighborhood of ``φ(u)``, label-preserved).  Matching then proceeds
path-at-a-time; here the shared enumerator plays that role with an order
that binds the most signature-selective vertices first.

The paper (quoting the study [23]) notes that "signature-based filters are
only effective for some datasets" — the matcher ablation benchmarks
measure exactly that against the preprocessing-enumeration family.
"""

from __future__ import annotations

from collections import deque

from repro.graph.labeled_graph import Graph
from repro.matching.base import MatchOutcome, SubgraphMatcher
from repro.matching.candidates import CandidateSets, select_kernel
from repro.matching.enumeration import enumerate_embeddings
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline, Timer

__all__ = ["SPathMatcher", "neighborhood_signature"]

Signature = dict[int, dict[int, int]]  # distance → {label → count}


def neighborhood_signature(graph: Graph, vertex: int, radius: int) -> Signature:
    """Label counts of the vertices within each distance 1..``radius``."""
    distance = {vertex: 0}
    queue: deque[int] = deque([vertex])
    signature: Signature = {d: {} for d in range(1, radius + 1)}
    while queue:
        current = queue.popleft()
        d = distance[current]
        if d == radius:
            continue
        for nbr in graph.neighbors(current):
            if nbr not in distance:
                distance[nbr] = d + 1
                queue.append(nbr)
                level = signature[d + 1]
                label = graph.label(nbr)
                level[label] = level.get(label, 0) + 1
    return signature


def _signature_dominates(data_sig: Signature, query_sig: Signature) -> bool:
    """Whether, cumulatively per label up to each distance, the data
    vertex has at least as many reachable vertices as the query vertex.

    Cumulative comparison is what stays sound for non-induced embeddings:
    a query vertex at distance d from ``u`` maps to a data vertex at
    distance *at most* d from ``φ(u)``.
    """
    data_cumulative: dict[int, int] = {}
    query_cumulative: dict[int, int] = {}
    for d in sorted(query_sig):
        for label, count in query_sig[d].items():
            query_cumulative[label] = query_cumulative.get(label, 0) + count
        for label, count in data_sig.get(d, {}).items():
            data_cumulative[label] = data_cumulative.get(label, 0) + count
        for label, needed in query_cumulative.items():
            if data_cumulative.get(label, 0) < needed:
                return False
    return True


class SPathMatcher(SubgraphMatcher):
    """Direct-enumeration matcher with k-hop signature filtering."""

    name = "SPath"

    def __init__(self, radius: int = 2) -> None:
        if radius < 1:
            raise ValueError("radius must be at least 1")
        self.radius = radius
        # Per-data-graph signature cache (graphs are immutable).  Entries
        # pin the graph so a recycled id() can never alias a dead graph.
        self._signature_cache: dict[int, tuple[Graph, list[Signature]]] = {}

    def _data_signatures(self, data: Graph) -> list[Signature]:
        key = id(data)
        cached = self._signature_cache.get(key)
        if cached is not None and cached[0] is data:
            return cached[1]
        signatures = [
            neighborhood_signature(data, v, self.radius)
            for v in data.vertices()
        ]
        # Keep the cache bounded: one graph at a time is typical.
        if len(self._signature_cache) > 64:
            self._signature_cache.clear()
        self._signature_cache[key] = (data, signatures)
        return signatures

    def candidate_sets(self, query: Graph, data: Graph) -> CandidateSets:
        """Signature-filtered candidates for every query vertex."""
        data_signatures = self._data_signatures(data)
        sets: list[list[int]] = []
        for u in query.vertices():
            du = query.degree(u)
            query_sig = neighborhood_signature(query, u, self.radius)
            sets.append(
                [
                    v
                    for v in data.vertices_with_label(query.label(u))
                    if data.degree(v) >= du
                    and _signature_dominates(data_signatures[v], query_sig)
                ]
            )
        return CandidateSets(
            sets, kernel=select_kernel(data), num_vertices=data.num_vertices
        )

    def run(
        self,
        query: Graph,
        data: Graph,
        limit: int | None = None,
        collect: bool = False,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> MatchOutcome:
        outcome = MatchOutcome()
        if query.num_vertices == 0:
            outcome.found = True
            outcome.num_embeddings = 1
            if collect:
                outcome.embeddings.append({})
            return outcome
        candidates = self.candidate_sets(query, data)
        if not candidates.all_nonempty:
            return outcome
        with Timer() as t_order:
            order = self._selective_order(query, candidates)
        outcome.order = order
        outcome.order_time = t_order.elapsed
        with Timer() as t_enum:
            result = enumerate_embeddings(
                query, data, candidates, order,
                limit=limit, collect=collect, deadline=deadline, plan=plan,
            )
        outcome.enumeration_time = t_enum.elapsed
        outcome.num_embeddings = result.num_embeddings
        outcome.embeddings = result.embeddings
        outcome.recursion_calls = result.recursion_calls
        outcome.completed = result.completed
        outcome.found = result.found
        return outcome

    @staticmethod
    def _selective_order(query: Graph, candidates: CandidateSets) -> tuple[int, ...]:
        """Greedy connected order, most selective vertex first."""
        sizes = candidates.sizes()
        start = min(query.vertices(), key=lambda u: (sizes[u], u))
        order = [start]
        selected = {start}
        frontier = set(query.neighbors(start))
        while len(order) < query.num_vertices:
            if not frontier:
                raise ValueError("SPath requires a connected query graph")
            nxt = min(frontier, key=lambda u: (sizes[u], u))
            order.append(nxt)
            selected.add(nxt)
            frontier.discard(nxt)
            frontier.update(u for u in query.neighbors(nxt) if u not in selected)
        return tuple(order)
