"""VF2 (Cordella et al., TPAMI 2004) for labeled subgraph isomorphism.

This is the verification algorithm of every classic IFV system (Grapes,
GGSX, and — with an extra ordering heuristic — CT-Index), and the paper's
representative of the *direct-enumeration* family: no per-query auxiliary
structure, feasibility decided pairwise during the search.

Semantics follow Definition II.1 of the paper: *non-induced*,
label-preserving, injective embeddings (monomorphisms).  The classic VF2
cutting rules are adapted accordingly:

* syntactic feasibility only constrains edges of the *query* — for every
  already-mapped neighbor ``u'`` of ``u``, ``(φ(u'), v)`` must be a data
  edge (the reverse direction is not required for monomorphism);
* 1-look-ahead: ``|N(u) ∩ T_q| ≤ |N(v) ∩ T_G|`` — terminal-set neighbors
  must map into terminal-set neighbors;
* 2-look-ahead: ``|N(u) ∩ Ñ_q| ≤ |N(v) ∩ (T_G ∪ Ñ_G)|`` — unseen neighbors
  map to unmapped vertices.

``order_heuristic='degree'`` selects the next query vertex by descending
degree inside the terminal set, the matching-order tweak CT-Index applies
to its "modified VF2" verifier.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.matching.base import MatchOutcome, SubgraphMatcher
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline, Timer

__all__ = ["VF2Matcher"]


class VF2Matcher(SubgraphMatcher):
    """Direct-enumeration VF2 with optional degree-ordering heuristic."""

    name = "VF2"

    def __init__(self, order_heuristic: str = "id") -> None:
        if order_heuristic not in ("id", "degree"):
            raise ValueError(f"unknown order heuristic {order_heuristic!r}")
        self.order_heuristic = order_heuristic
        if order_heuristic == "degree":
            self.name = "VF2-degree"

    def run(
        self,
        query: Graph,
        data: Graph,
        limit: int | None = None,
        collect: bool = False,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> MatchOutcome:
        del plan  # direct enumeration derives nothing a plan could carry
        outcome = MatchOutcome()
        if query.num_vertices == 0:
            outcome.found = True
            outcome.num_embeddings = 1
            if collect:
                outcome.embeddings.append({})
            return outcome
        if query.num_vertices > data.num_vertices or query.num_edges > data.num_edges:
            return outcome

        nq, ng = query.num_vertices, data.num_vertices
        core_q: list[int] = [-1] * nq  # query → data
        core_g: list[int] = [-1] * ng  # data → query
        # in_t_*[v] > 0 marks terminal-set membership (count of mapped
        # neighbors, maintained incrementally).
        adj_mapped_q = [0] * nq
        adj_mapped_g = [0] * ng
        depth_added_q: list[list[int]] = []
        depth_added_g: list[list[int]] = []

        if self.order_heuristic == "degree":
            tie_key = lambda u: (-query.degree(u), u)  # noqa: E731
        else:
            tie_key = lambda u: u  # noqa: E731

        def select_query_vertex() -> int:
            terminal = [u for u in range(nq) if core_q[u] < 0 and adj_mapped_q[u] > 0]
            if terminal:
                return min(terminal, key=tie_key)
            unmapped = [u for u in range(nq) if core_q[u] < 0]
            return min(unmapped, key=tie_key)

        def candidate_data_vertices(u: int, use_terminal: bool) -> list[int]:
            label = query.label(u)
            if use_terminal:
                return [
                    v
                    for v in data.vertices_with_label(label)
                    if core_g[v] < 0 and adj_mapped_g[v] > 0
                ]
            return [v for v in data.vertices_with_label(label) if core_g[v] < 0]

        def feasible(u: int, v: int) -> bool:
            if data.degree(v) < query.degree(u):
                return False
            term_q = new_q = 0
            for u2 in query.neighbors(u):
                mapped = core_q[u2]
                if mapped >= 0:
                    if not data.has_edge(mapped, v):
                        return False
                elif adj_mapped_q[u2] > 0:
                    term_q += 1
                else:
                    new_q += 1
            term_g = other_g = 0
            for v2 in data.neighbors(v):
                if core_g[v2] >= 0:
                    continue
                if adj_mapped_g[v2] > 0:
                    term_g += 1
                else:
                    other_g += 1
            if term_q > term_g:
                return False
            if new_q > term_g - term_q + other_g:
                return False
            return True

        def add_pair(u: int, v: int) -> None:
            core_q[u] = v
            core_g[v] = u
            added_q: list[int] = []
            for u2 in query.neighbors(u):
                adj_mapped_q[u2] += 1
                added_q.append(u2)
            added_g: list[int] = []
            for v2 in data.neighbors(v):
                adj_mapped_g[v2] += 1
                added_g.append(v2)
            depth_added_q.append(added_q)
            depth_added_g.append(added_g)

        def remove_pair(u: int, v: int) -> None:
            for u2 in depth_added_q.pop():
                adj_mapped_q[u2] -= 1
            for v2 in depth_added_g.pop():
                adj_mapped_g[v2] -= 1
            core_q[u] = -1
            core_g[v] = -1

        def recurse(depth: int) -> bool:
            outcome.recursion_calls += 1
            if deadline is not None:
                deadline.check()
            if depth == nq:
                outcome.num_embeddings += 1
                if collect:
                    outcome.embeddings.append(
                        {u: core_q[u] for u in range(nq)}
                    )
                if limit is not None and outcome.num_embeddings >= limit:
                    outcome.completed = False
                    return False
                return True
            u = select_query_vertex()
            use_terminal = adj_mapped_q[u] > 0
            for v in candidate_data_vertices(u, use_terminal):
                if feasible(u, v):
                    add_pair(u, v)
                    keep_going = recurse(depth + 1)
                    remove_pair(u, v)
                    if not keep_going:
                        return False
            return True

        with Timer() as t:
            recurse(0)
        outcome.enumeration_time = t.elapsed
        outcome.found = outcome.num_embeddings > 0
        return outcome
