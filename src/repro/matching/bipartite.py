"""Maximum bipartite matching.

GraphQL's pseudo subgraph isomorphism refinement reduces a local
consistency check to the existence of a *semi-perfect matching* — a
matching that covers every left-side vertex — in the bigraph between
``N(u)`` and ``N(v)``.  Following the paper (which cites Duff, Kaya and
Uçar's study and picks a breadth-first-search based algorithm for its
simplicity and reasonable performance), we implement augmenting-path search
with a BFS layer to seed each augmentation.

The bigraph is given as ``adjacency[i] = iterable of right vertices
reachable from left vertex i``.  Right vertices are arbitrary hashable ids
(data vertex ids in the GraphQL use case), so no dense right-side indexing
is required.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

__all__ = ["has_semi_perfect_matching", "maximum_bipartite_matching"]


def maximum_bipartite_matching(
    adjacency: Sequence[Sequence[Hashable]],
) -> dict[int, Hashable]:
    """Return a maximum matching as ``{left: right}``.

    Kuhn's algorithm: one augmenting-path search per left vertex, with a
    greedy pass first.  O(V·E) worst case, which matches the complexity the
    paper states for its implementation.
    """
    match_left: dict[int, Hashable] = {}
    match_right: dict[Hashable, int] = {}

    def try_augment(left: int, visited: set[Hashable]) -> bool:
        for right in adjacency[left]:
            if right in visited:
                continue
            visited.add(right)
            owner = match_right.get(right)
            if owner is None or try_augment(owner, visited):
                match_left[left] = right
                match_right[right] = left
                return True
        return False

    # Greedy seeding: matches most vertices instantly on easy instances.
    for left in range(len(adjacency)):
        for right in adjacency[left]:
            if right not in match_right:
                match_left[left] = right
                match_right[right] = left
                break
    for left in range(len(adjacency)):
        if left not in match_left:
            try_augment(left, set())
    return match_left


def has_semi_perfect_matching(adjacency: Sequence[Sequence[Hashable]]) -> bool:
    """Whether a matching covering *every* left vertex exists.

    Early-exits as soon as one left vertex cannot be augmented, which is
    the common case during GraphQL refinement (a data vertex fails the
    pseudo-isomorphism test).
    """
    match_left: dict[int, Hashable] = {}
    match_right: dict[Hashable, int] = {}

    def try_augment(left: int, visited: set[Hashable]) -> bool:
        for right in adjacency[left]:
            if right in visited:
                continue
            visited.add(right)
            owner = match_right.get(right)
            if owner is None or try_augment(owner, visited):
                match_left[left] = right
                match_right[right] = left
                return True
        return False

    for left in range(len(adjacency)):
        if not adjacency[left]:
            return False
        if left not in match_left and not try_augment(left, set()):
            return False
    return True
