"""Maximum bipartite matching.

GraphQL's pseudo subgraph isomorphism refinement reduces a local
consistency check to the existence of a *semi-perfect matching* — a
matching that covers every left-side vertex — in the bigraph between
``N(u)`` and ``N(v)``.  Following the paper (which cites Duff, Kaya and
Uçar's study and picks a breadth-first-search based algorithm for its
simplicity and reasonable performance), we implement augmenting-path search
with a BFS layer to seed each augmentation.

The bigraph is given as ``adjacency[i] = iterable of right vertices
reachable from left vertex i``.  Right vertices are arbitrary hashable ids
(data vertex ids in the GraphQL use case), so no dense right-side indexing
is required.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

__all__ = [
    "has_semi_perfect_matching",
    "has_semi_perfect_matching_bits",
    "maximum_bipartite_matching",
]


def maximum_bipartite_matching(
    adjacency: Sequence[Sequence[Hashable]],
) -> dict[int, Hashable]:
    """Return a maximum matching as ``{left: right}``.

    Kuhn's algorithm: one augmenting-path search per left vertex, with a
    greedy pass first.  O(V·E) worst case, which matches the complexity the
    paper states for its implementation.
    """
    match_left: dict[int, Hashable] = {}
    match_right: dict[Hashable, int] = {}

    def try_augment(left: int, visited: set[Hashable]) -> bool:
        for right in adjacency[left]:
            if right in visited:
                continue
            visited.add(right)
            owner = match_right.get(right)
            if owner is None or try_augment(owner, visited):
                match_left[left] = right
                match_right[right] = left
                return True
        return False

    # Greedy seeding: matches most vertices instantly on easy instances.
    for left in range(len(adjacency)):
        for right in adjacency[left]:
            if right not in match_right:
                match_left[left] = right
                match_right[right] = left
                break
    for left in range(len(adjacency)):
        if left not in match_left:
            try_augment(left, set())
    return match_left


def has_semi_perfect_matching(adjacency: Sequence[Sequence[Hashable]]) -> bool:
    """Whether a matching covering *every* left vertex exists.

    Early-exits as soon as one left vertex cannot be augmented, which is
    the common case during GraphQL refinement (a data vertex fails the
    pseudo-isomorphism test).
    """
    match_left: dict[int, Hashable] = {}
    match_right: dict[Hashable, int] = {}

    def try_augment(left: int, visited: set[Hashable]) -> bool:
        for right in adjacency[left]:
            if right in visited:
                continue
            visited.add(right)
            owner = match_right.get(right)
            if owner is None or try_augment(owner, visited):
                match_left[left] = right
                match_right[right] = left
                return True
        return False

    for left in range(len(adjacency)):
        if not adjacency[left]:
            return False
        if left not in match_left and not try_augment(left, set()):
            return False
    return True


def has_semi_perfect_matching_bits(rows: Sequence[int]) -> bool:
    """:func:`has_semi_perfect_matching` over bitmap rows.

    ``rows[l]`` has bit ``i`` set iff right vertex ``i`` is adjacent to
    left vertex ``l``.  This is the GraphQL refinement's hot loop, so the
    whole test stays on big-int operations: no row is ever decoded to a
    vertex list, the visited set is one int, and two cheap screens answer
    almost every call before Kuhn's algorithm runs —

    * an empty row fails immediately (no cover possible);
    * when every row has at least ``len(rows)`` options, Hall's condition
      holds for every subset and a greedy assignment always completes.
    """
    n = len(rows)
    saturated = True
    for row in rows:
        if not row:
            return False
        if saturated and row.bit_count() < n:
            saturated = False
    if saturated:
        return True

    owner: dict[int, int] = {}  # right bit (power of two) -> left
    matched = [False] * n
    taken = 0
    for left in range(n):
        free = rows[left] & ~taken
        if free:
            bit = free & -free
            taken |= bit
            owner[bit] = left
            matched[left] = True

    visited = 0

    def try_augment(left: int) -> bool:
        nonlocal visited
        row = rows[left] & ~visited
        while row:
            bit = row & -row
            visited |= bit
            other = owner.get(bit)
            if other is None or try_augment(other):
                owner[bit] = left
                return True
            row &= ~visited  # skip rights explored by the failed recursion
        return False

    for left in range(n):
        if not matched[left]:
            visited = 0
            if not try_augment(left):
                return False
    return True
