"""The CFL subgraph matcher (Bi et al., SIGMOD 2016), as modified by the
paper for subgraph query processing.

Filter phase — the CPI-style candidate construction (Section III-B "CFL"):

1. Pick a BFS root minimising ``|C_ini(u)| / d(u)`` (few seed candidates,
   high degree — CFL's root selection rule).
2. *Top-down generation* along the BFS tree ``q_t``: candidates of ``u``
   are data vertices with label ``L(u)`` adjacent to a candidate of ``u``'s
   tree parent, degree-feasible, and — *backward pruning* — adjacent to at
   least one candidate of every already-visited neighbor of ``u`` (this is
   where non-tree edges prune).
3. *Bottom-up refinement* in reverse BFS order: ``v`` stays in Φ(u) only if
   for every neighbor ``u'`` of ``u`` visited after ``u``, ``N(v) ∩ Φ(u')``
   is non-empty.

Both rules instantiate the paper's completeness observation — a candidate
may be dropped only when some query neighbor has no adjacent candidate —
so Φ stays complete (Definition III.1).

Enumeration phase: path-based, core-first ordering + the shared
backtracking enumerator.

Candidate sets are int bitmaps throughout (see :mod:`repro.utils.bitset`):
the "adjacent to at least one candidate" tests of both pruning rules are
single AND instructions against the data graph's memoized per-vertex
adjacency bitmaps.

Complexities match the paper: O(|E(q)|·|E(G)|) time, O(|V(q)|·|E(G)|)
space.
"""

from __future__ import annotations

from repro.graph.algorithms import bfs_tree, two_core
from repro.graph.labeled_graph import Graph
from repro.matching.base import PreprocessingMatcher
from repro.matching.candidates import CandidateSets, ldf_candidate_bits, select_kernel
from repro.matching.ordering import path_based_order
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline

__all__ = ["CFLMatcher"]


def _adjacent_to_some(data: Graph, v: int, phi_u2: set[int]) -> bool:
    """Whether N(v) intersects Φ(u'), iterating the smaller side."""
    nbrs = data.neighbor_set(v)
    if len(nbrs) <= len(phi_u2):
        return any(w in phi_u2 for w in nbrs)
    return any(w in nbrs for w in phi_u2)


class CFLMatcher(PreprocessingMatcher):
    """Preprocessing-enumeration matcher with CFL's filter and order."""

    name = "CFL"

    # ------------------------------------------------------------------
    # Filter phase
    # ------------------------------------------------------------------

    def build_candidates(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> CandidateSets | None:
        seeds = ldf_candidate_bits(query, data, deadline=deadline)
        if not all(seeds):
            return None
        root = self._select_root(query, [b.bit_count() for b in seeds])
        tree = plan.bfs_tree(root) if plan is not None else bfs_tree(query, root)
        visit_rank = {u: i for i, u in enumerate(tree.order)}

        phi: list[int] = [0] * query.num_vertices
        phi[root] = seeds[root]

        # ``v`` is adjacent to some candidate of ``u2`` iff ``v`` lies in
        # the union of the neighbor bitmaps of Φ(u2)'s members, so both
        # pruning rules below are one AND against that union — computed
        # once per query neighbor, not once per candidate.  Unions are
        # memoized per phase (Φ(u2) is final when a phase reads it).
        def adjacency_union(bits: int) -> int:
            mask = 0
            while bits:
                low = bits & -bits
                bits ^= low
                mask |= data.neighbor_bitmap(low.bit_length() - 1)
            return mask

        # Top-down generation with backward pruning.
        union_memo: dict[int, int] = {}
        for u in tree.order[1:]:
            if deadline is not None:
                deadline.check()
            parent = tree.parent[u]
            label_u = query.label(u)
            pool = 0
            bits = phi[parent]
            while bits:
                low = bits & -bits
                bits ^= low
                pool |= data.neighbor_label_bitmap(low.bit_length() - 1, label_u)
            pool &= data.degree_bitmap(query.degree(u))
            for u2 in query.neighbors(u):
                if not pool:
                    break
                if visit_rank[u2] < visit_rank[u] and u2 != parent:
                    mask = union_memo.get(u2)
                    if mask is None:
                        mask = union_memo[u2] = adjacency_union(phi[u2])
                    pool &= mask
            if not pool:
                return None
            phi[u] = pool

        # Bottom-up refinement.
        union_memo = {}
        for u in reversed(tree.order):
            if deadline is not None:
                deadline.check()
            kept = phi[u]
            for u2 in query.neighbors(u):
                if visit_rank[u2] > visit_rank[u]:
                    mask = union_memo.get(u2)
                    if mask is None:
                        mask = union_memo[u2] = adjacency_union(phi[u2])
                    kept &= mask
                    if not kept:
                        return None
            phi[u] = kept

        # Remember the tree for the ordering phase of this same query.
        self._last_tree = (query, tree)
        # The refinement above is int-bitmap native; the selected backend
        # takes over at the boundary (one cheap conversion per query).
        return CandidateSets.from_bitmaps(
            phi, kernel=select_kernel(data), num_vertices=data.num_vertices
        )

    @staticmethod
    def _select_root(query: Graph, seed_sizes: list[int]) -> int:
        """argmin over u of |C_ini(u)| / d(u) (CFL's root rule)."""
        return min(
            query.vertices(),
            key=lambda u: (seed_sizes[u] / max(query.degree(u), 1), u),
        )

    # ------------------------------------------------------------------
    # Ordering phase
    # ------------------------------------------------------------------

    def matching_order(
        self,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
        plan: QueryPlan | None = None,
    ) -> tuple[int, ...]:
        cached = getattr(self, "_last_tree", None)
        if cached is not None and cached[0] is query:
            tree = cached[1]
        else:
            # Ordering requested without a preceding filter run on this
            # query: rebuild the BFS tree from the same root rule.
            root = self._select_root(query, list(candidates.sizes()))
            tree = plan.bfs_tree(root) if plan is not None else bfs_tree(query, root)
        core = plan.two_core() if plan is not None else two_core(query)
        return path_based_order(query, tree, candidates, core=core)
