"""The CFL subgraph matcher (Bi et al., SIGMOD 2016), as modified by the
paper for subgraph query processing.

Filter phase — the CPI-style candidate construction (Section III-B "CFL"):

1. Pick a BFS root minimising ``|C_ini(u)| / d(u)`` (few seed candidates,
   high degree — CFL's root selection rule).
2. *Top-down generation* along the BFS tree ``q_t``: candidates of ``u``
   are data vertices with label ``L(u)`` adjacent to a candidate of ``u``'s
   tree parent, degree-feasible, and — *backward pruning* — adjacent to at
   least one candidate of every already-visited neighbor of ``u`` (this is
   where non-tree edges prune).
3. *Bottom-up refinement* in reverse BFS order: ``v`` stays in Φ(u) only if
   for every neighbor ``u'`` of ``u`` visited after ``u``, ``N(v) ∩ Φ(u')``
   is non-empty.

Both rules instantiate the paper's completeness observation — a candidate
may be dropped only when some query neighbor has no adjacent candidate —
so Φ stays complete (Definition III.1).

Enumeration phase: path-based, core-first ordering + the shared
backtracking enumerator.

Candidate sets are int bitmaps throughout (see :mod:`repro.utils.bitset`):
the "adjacent to at least one candidate" tests of both pruning rules are
single AND instructions against the data graph's memoized per-vertex
adjacency bitmaps.

Complexities match the paper: O(|E(q)|·|E(G)|) time, O(|V(q)|·|E(G)|)
space.
"""

from __future__ import annotations

from repro.graph.algorithms import bfs_tree, two_core
from repro.graph.labeled_graph import Graph
from repro.matching.base import PreprocessingMatcher
from repro.matching.candidates import CandidateSets, ldf_candidate_bits
from repro.matching.ordering import path_based_order
from repro.utils.bitset import iter_bits
from repro.utils.timing import Deadline

__all__ = ["CFLMatcher"]


def _adjacent_to_some(data: Graph, v: int, phi_u2: set[int]) -> bool:
    """Whether N(v) intersects Φ(u'), iterating the smaller side."""
    nbrs = data.neighbor_set(v)
    if len(nbrs) <= len(phi_u2):
        return any(w in phi_u2 for w in nbrs)
    return any(w in nbrs for w in phi_u2)


class CFLMatcher(PreprocessingMatcher):
    """Preprocessing-enumeration matcher with CFL's filter and order."""

    name = "CFL"

    # ------------------------------------------------------------------
    # Filter phase
    # ------------------------------------------------------------------

    def build_candidates(
        self, query: Graph, data: Graph, deadline: Deadline | None = None
    ) -> CandidateSets | None:
        seeds = ldf_candidate_bits(query, data, deadline=deadline)
        if not all(seeds):
            return None
        root = self._select_root(query, [b.bit_count() for b in seeds])
        tree = bfs_tree(query, root)
        visit_rank = {u: i for i, u in enumerate(tree.order)}

        phi: list[int] = [0] * query.num_vertices
        phi[root] = seeds[root]

        # Top-down generation with backward pruning.
        for u in tree.order[1:]:
            if deadline is not None:
                deadline.check()
            parent = tree.parent[u]
            label_u = query.label(u)
            earlier_nbrs = [
                u2 for u2 in query.neighbors(u)
                if visit_rank[u2] < visit_rank[u] and u2 != parent
            ]
            pool = 0
            for vp in iter_bits(phi[parent]):
                pool |= data.neighbor_label_bitmap(vp, label_u)
            pool &= data.degree_bitmap(query.degree(u))
            if earlier_nbrs:
                survivors = 0
                for v in iter_bits(pool):
                    if all(
                        data.neighbor_bitmap(v) & phi[u2] for u2 in earlier_nbrs
                    ):
                        survivors |= 1 << v
            else:
                survivors = pool
            if not survivors:
                return None
            phi[u] = survivors

        # Bottom-up refinement.
        for u in reversed(tree.order):
            if deadline is not None:
                deadline.check()
            later_nbrs = [
                u2 for u2 in query.neighbors(u) if visit_rank[u2] > visit_rank[u]
            ]
            if not later_nbrs:
                continue
            kept = 0
            for v in iter_bits(phi[u]):
                if all(data.neighbor_bitmap(v) & phi[u2] for u2 in later_nbrs):
                    kept |= 1 << v
            if kept != phi[u]:
                if not kept:
                    return None
                phi[u] = kept

        # Remember the tree for the ordering phase of this same query.
        self._last_tree = (query, tree)
        return CandidateSets.from_bitmaps(phi)

    @staticmethod
    def _select_root(query: Graph, seed_sizes: list[int]) -> int:
        """argmin over u of |C_ini(u)| / d(u) (CFL's root rule)."""
        return min(
            query.vertices(),
            key=lambda u: (seed_sizes[u] / max(query.degree(u), 1), u),
        )

    # ------------------------------------------------------------------
    # Ordering phase
    # ------------------------------------------------------------------

    def matching_order(
        self, query: Graph, data: Graph, candidates: CandidateSets
    ) -> tuple[int, ...]:
        cached = getattr(self, "_last_tree", None)
        if cached is not None and cached[0] is query:
            tree = cached[1]
        else:
            # Ordering requested without a preceding filter run on this
            # query: rebuild the BFS tree from the same root rule.
            tree = bfs_tree(query, self._select_root(query, list(candidates.sizes())))
        return path_based_order(query, tree, candidates, core=two_core(query))
