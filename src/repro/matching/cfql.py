"""CFQL — the paper's proposed hybrid matcher (Section III-B "CFQL").

The study observed that CFL's filter is the fastest and GraphQL's
join-based ordering is the most robust, so CFQL composes exactly those two
phases: CFL's CPI-style candidate construction feeding GraphQL's join-based
matching order and the shared enumeration.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.matching.base import PreprocessingMatcher
from repro.matching.candidates import CandidateSets
from repro.matching.cfl import CFLMatcher
from repro.matching.ordering import join_based_order
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline

__all__ = ["CFQLMatcher"]


class CFQLMatcher(PreprocessingMatcher):
    """CFL filtering + GraphQL ordering: the best of both (per the paper)."""

    name = "CFQL"

    def __init__(self) -> None:
        self._cfl = CFLMatcher()

    def build_candidates(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> CandidateSets | None:
        return self._cfl.build_candidates(query, data, deadline=deadline, plan=plan)

    def matching_order(
        self,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
        plan: QueryPlan | None = None,
    ) -> tuple[int, ...]:
        return join_based_order(query, candidates)
