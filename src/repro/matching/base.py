"""Matcher interfaces and the shared preprocessing-enumeration skeleton.

The paper's taxonomy (Section II-B2) splits subgraph matching into

* *direct-enumeration* algorithms (Ullmann, VF2): no per-query auxiliary
  structure; candidate pairs come from cheap local filters inside the
  search; and
* *preprocessing-enumeration* algorithms (GraphQL, CFL, CFQL): a filter
  phase builds complete candidate vertex sets, an ordering phase derives a
  matching order from them, and a generic enumeration phase does the
  backtracking.

:class:`SubgraphMatcher` is the common surface (``run`` / ``exists`` /
``count`` / ``find_all``); :class:`PreprocessingMatcher` implements ``run``
once for the whole second family so that concrete matchers only provide
``build_candidates`` and ``matching_order``.  The vcFV query pipeline later
reuses exactly those two phases as its filtering and verification steps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.graph.labeled_graph import Graph
from repro.matching.candidates import CandidateSets
from repro.matching.enumeration import enumerate_embeddings
from repro.matching.plan import QueryPlan
from repro.utils.timing import Deadline, Timer

__all__ = ["MatchOutcome", "PreprocessingMatcher", "SubgraphMatcher"]


@dataclass
class MatchOutcome:
    """Everything one matching run produced, including phase timings.

    ``candidates`` and ``order`` are ``None`` for direct-enumeration
    matchers, and also when the filter phase already proved non-containment
    (an empty Φ(u)) so no order was computed.
    """

    found: bool = False
    num_embeddings: int = 0
    embeddings: list[dict[int, int]] = field(default_factory=list)
    candidates: CandidateSets | None = None
    order: tuple[int, ...] | None = None
    filter_time: float = 0.0
    order_time: float = 0.0
    enumeration_time: float = 0.0
    recursion_calls: int = 0
    completed: bool = True
    filtered_out: bool = False  # True when Φ had an empty set (vcFV prune)

    @property
    def total_time(self) -> float:
        return self.filter_time + self.order_time + self.enumeration_time


class SubgraphMatcher(ABC):
    """A subgraph matching algorithm (query graph → one data graph)."""

    #: Human-readable algorithm name, used in reports.
    name: str = "matcher"

    @abstractmethod
    def run(
        self,
        query: Graph,
        data: Graph,
        limit: int | None = None,
        collect: bool = False,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> MatchOutcome:
        """Execute the matcher; see :class:`MatchOutcome`.

        ``plan`` is an optional compiled :class:`QueryPlan` for ``query``;
        matchers use its memoized per-query state (validated orders, BFS
        trees, NLF constraints) instead of recomputing it per data graph.
        Direct-enumeration matchers may ignore it.
        """

    # Convenience wrappers -------------------------------------------------

    def exists(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> bool:
        """Subgraph isomorphism test: is there at least one embedding?"""
        return self.run(query, data, limit=1, deadline=deadline, plan=plan).found

    def count(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> int:
        """Number of subgraph isomorphisms from ``query`` to ``data``."""
        return self.run(query, data, deadline=deadline, plan=plan).num_embeddings

    def find_all(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> list[dict[int, int]]:
        """All embeddings, as ``{query vertex: data vertex}`` dicts."""
        return self.run(query, data, collect=True, deadline=deadline, plan=plan).embeddings

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PreprocessingMatcher(SubgraphMatcher):
    """Skeleton for filter → order → enumerate matchers."""

    @abstractmethod
    def build_candidates(
        self,
        query: Graph,
        data: Graph,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> CandidateSets | None:
        """The preprocessing (filter) phase.

        Returns complete candidate vertex sets, or ``None`` as soon as some
        Φ(u) is empty — by Proposition III.1 the data graph then cannot
        contain the query, and the vcFV pipeline counts it as filtered out.
        """

    @abstractmethod
    def matching_order(
        self,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
        plan: QueryPlan | None = None,
    ) -> tuple[int, ...]:
        """The ordering phase: a connected permutation of query vertices."""

    def run(
        self,
        query: Graph,
        data: Graph,
        limit: int | None = None,
        collect: bool = False,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> MatchOutcome:
        outcome = MatchOutcome()
        if query.num_vertices == 0:
            outcome.found = True
            outcome.num_embeddings = 1
            if collect:
                outcome.embeddings.append({})
            return outcome
        with Timer() as t_filter:
            candidates = self.build_candidates(query, data, deadline=deadline, plan=plan)
        outcome.filter_time = t_filter.elapsed
        if candidates is None:
            outcome.filtered_out = True
            return outcome
        outcome.candidates = candidates
        with Timer() as t_order:
            order = self.matching_order(query, data, candidates, plan=plan)
        outcome.order = tuple(order)
        outcome.order_time = t_order.elapsed
        with Timer() as t_enum:
            result = enumerate_embeddings(
                query,
                data,
                candidates,
                order,
                limit=limit,
                collect=collect,
                deadline=deadline,
                plan=plan,
            )
        outcome.enumeration_time = t_enum.elapsed
        outcome.num_embeddings = result.num_embeddings
        outcome.embeddings = result.embeddings
        outcome.recursion_calls = result.recursion_calls
        outcome.completed = result.completed
        outcome.found = result.found
        return outcome
