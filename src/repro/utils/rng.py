"""Seeded randomness helpers.

Every workload generator in this library takes either an integer seed or a
ready ``random.Random`` so that the full experiment suite is reproducible
bit-for-bit.  This module centralises the coercion logic.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rng"]

SeedLike = int | random.Random | None


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a ``random.Random`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for an OS-seeded generator.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when one seed must drive several generators (e.g. one per data
    graph) without their streams overlapping.
    """
    return random.Random(rng.getrandbits(64))
