"""Timers and cooperative deadlines.

The paper enforces a 10-minute limit per query and a 24-hour limit per index
build, recording violations as out-of-time (OOT).  Python offers no safe way
to preempt a running computation, so every long-running loop in this library
periodically polls a :class:`Deadline`.  The poll is a single integer
comparison most of the time (see :meth:`Deadline.check`), which keeps the
overhead far below the cost of the graph operations it guards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.utils.errors import TimeLimitExceeded

__all__ = ["Deadline", "Timer"]

# How many calls to Deadline.check() may elapse between actual clock reads.
_CHECK_STRIDE = 256


class Deadline:
    """A cooperative time budget.

    A ``Deadline`` with ``seconds=None`` never expires, which lets callers
    thread one object through their code unconditionally::

        deadline = Deadline(limit)       # limit may be None
        for ...:
            deadline.check()             # raises TimeLimitExceeded when due

    ``check`` only consults the wall clock every ``_CHECK_STRIDE`` calls so
    it is cheap enough for inner enumeration loops.
    """

    __slots__ = ("_expires_at", "_countdown")

    def __init__(self, seconds: float | None = None) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"time limit must be non-negative, got {seconds!r}")
        self._expires_at = None if seconds is None else time.perf_counter() + seconds
        self._countdown = _CHECK_STRIDE

    @classmethod
    def from_remaining(cls, remaining: float | None) -> "Deadline":
        """Rebuild a deadline from :meth:`remaining`'s value.

        The stored expiry is an absolute ``perf_counter`` target, which is
        meaningless in another process (each process has its own clock
        origin); a deadline crosses a process boundary as its *remaining*
        budget instead.  An already-expired budget (negative remaining)
        clamps to an immediately-expiring deadline.
        """
        if remaining is None:
            return cls(None)
        return cls(max(0.0, remaining))

    def __reduce__(self):
        return (Deadline.from_remaining, (self.remaining(),))

    @property
    def unlimited(self) -> bool:
        """Whether this deadline can never expire."""
        return self._expires_at is None

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for an unlimited deadline."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.perf_counter()

    def expired(self) -> bool:
        """Read the clock immediately and report whether time has run out."""
        if self._expires_at is None:
            return False
        return time.perf_counter() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`TimeLimitExceeded` if the budget has been spent.

        Cheap on the fast path: the wall clock is only read once every
        ``_CHECK_STRIDE`` invocations.
        """
        if self._expires_at is None:
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = _CHECK_STRIDE
        if time.perf_counter() >= self._expires_at:
            raise TimeLimitExceeded("deadline expired")


@dataclass
class Timer:
    """Accumulating stopwatch used for the per-phase timings in Section IV.

    Supports both context-manager use (``with timer: ...``) and explicit
    ``start``/``stop`` calls.  ``elapsed`` accumulates across activations,
    matching the paper's metrics which sum a phase's time over all data
    graphs touched by one query.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started_at is not None
