"""Timers and cooperative deadlines.

The paper enforces a 10-minute limit per query and a 24-hour limit per index
build, recording violations as out-of-time (OOT).  Python offers no safe way
to preempt a running computation, so every long-running loop in this library
periodically polls a :class:`Deadline`.  The poll is a single integer
comparison most of the time (see :meth:`Deadline.check`), which keeps the
overhead far below the cost of the graph operations it guards.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.utils.errors import TimeLimitExceeded

__all__ = ["Deadline", "LatencyHistogram", "Timer"]

# How many calls to Deadline.check() may elapse between actual clock reads.
_CHECK_STRIDE = 256


class Deadline:
    """A cooperative time budget.

    A ``Deadline`` with ``seconds=None`` never expires, which lets callers
    thread one object through their code unconditionally::

        deadline = Deadline(limit)       # limit may be None
        for ...:
            deadline.check()             # raises TimeLimitExceeded when due

    ``check`` only consults the wall clock every ``_CHECK_STRIDE`` calls so
    it is cheap enough for inner enumeration loops.
    """

    __slots__ = ("_expires_at", "_countdown")

    def __init__(self, seconds: float | None = None) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"time limit must be non-negative, got {seconds!r}")
        self._expires_at = None if seconds is None else time.perf_counter() + seconds
        self._countdown = _CHECK_STRIDE

    @classmethod
    def from_remaining(cls, remaining: float | None) -> "Deadline":
        """Rebuild a deadline from :meth:`remaining`'s value.

        The stored expiry is an absolute ``perf_counter`` target, which is
        meaningless in another process (each process has its own clock
        origin); a deadline crosses a process boundary as its *remaining*
        budget instead.  An already-expired budget (negative remaining)
        clamps to an immediately-expiring deadline.
        """
        if remaining is None:
            return cls(None)
        return cls(max(0.0, remaining))

    def __reduce__(self):
        return (Deadline.from_remaining, (self.remaining(),))

    @property
    def unlimited(self) -> bool:
        """Whether this deadline can never expire."""
        return self._expires_at is None

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for an unlimited deadline."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.perf_counter()

    def expired(self) -> bool:
        """Read the clock immediately and report whether time has run out."""
        if self._expires_at is None:
            return False
        return time.perf_counter() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`TimeLimitExceeded` if the budget has been spent.

        Cheap on the fast path: the wall clock is only read once every
        ``_CHECK_STRIDE`` invocations.
        """
        if self._expires_at is None:
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = _CHECK_STRIDE
        if time.perf_counter() >= self._expires_at:
            raise TimeLimitExceeded("deadline expired")

    def check_every(self, k: int) -> None:
        """Like :meth:`check`, but accounting for ``k`` units of work.

        Loops that already batch their work (e.g. the enumeration kernel,
        which extends many candidates per bitmap operation) call this once
        per batch instead of :meth:`check` once per unit.  The clock is
        still read at least once every ``_CHECK_STRIDE`` units, so expiry
        is detected within one stride of work regardless of batch size.
        """
        if self._expires_at is None:
            return
        self._countdown -= k
        if self._countdown > 0:
            return
        self._countdown = _CHECK_STRIDE
        if time.perf_counter() >= self._expires_at:
            raise TimeLimitExceeded("deadline expired")


class LatencyHistogram:
    """Fixed log-bucket latency histogram with mergeable counts.

    Latencies span four-plus orders of magnitude under load (a cache hit
    is microseconds, a cold CFQL query is seconds), so percentiles are
    tracked over geometrically sized buckets: bucket 0 holds everything
    up to ``min_value`` seconds and each later bucket is ``growth`` times
    wider than the one before.  A reported percentile is the upper bound
    of its bucket, i.e. within one ``growth`` factor of the true value —
    plenty for p50/p95/p99 reporting, at a fixed few hundred ints of
    state.

    Two histograms with the same bucket layout :meth:`merge` by adding
    counts, so per-worker (or per-client-thread) recording stays lock-free
    and is folded into one distribution at reporting time.  ``to_dict`` /
    ``from_dict`` round-trip through JSON for the service ``stats`` verb
    and ``BENCH_serve.json``.
    """

    __slots__ = (
        "min_value", "growth", "counts", "count", "total", "max_value",
        "_log_growth",
    )

    #: Default layout: 1 µs lower bound, 15 % bucket growth, 160 buckets —
    #: covering 1 µs .. ~4,000 s, comfortably past the paper's 600 s limit.
    DEFAULT_MIN = 1e-6
    DEFAULT_GROWTH = 1.15
    DEFAULT_BUCKETS = 160

    def __init__(
        self,
        min_value: float = DEFAULT_MIN,
        growth: float = DEFAULT_GROWTH,
        num_buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be greater than 1")
        if num_buckets < 2:
            raise ValueError("need at least 2 buckets")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self.counts = [0] * num_buckets
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _bucket(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = 1 + int(math.log(value / self.min_value) / self._log_growth)
        return min(index, len(self.counts) - 1)

    def _upper_bound(self, index: int) -> float:
        return self.min_value * self.growth**index

    def record(self, seconds: float) -> None:
        """Add one observation (negative values clamp to zero)."""
        value = max(0.0, seconds)
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's counts into this one (same layout)."""
        if (
            other.min_value != self.min_value
            or other.growth != self.growth
            or len(other.counts) != len(self.counts)
        ):
            raise ValueError("cannot merge histograms with different bucket layouts")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        return self

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-th percentile.

        ``p`` is in [0, 100].  Returns 0.0 for an empty histogram.  The
        true observation is at most one ``growth`` factor below the
        returned value (and the overall maximum is reported exactly).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if index == len(self.counts) - 1:
                    # The last bucket is open-ended (it absorbs overflow);
                    # its only honest upper bound is the recorded maximum.
                    return self.max_value
                return min(self._upper_bound(index), self.max_value)
        return self.max_value  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-ready digest used by the service stats and bench reports."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "max_s": self.max_value,
            "p50_s": self.percentile(50),
            "p90_s": self.percentile(90),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }

    # ------------------------------------------------------------------
    # Serialization (sparse: most buckets are empty)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "num_buckets": len(self.counts),
            "count": self.count,
            "total": self.total,
            "max_value": self.max_value,
            "buckets": [[i, c] for i, c in enumerate(self.counts) if c],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        hist = cls(
            min_value=data["min_value"],
            growth=data["growth"],
            num_buckets=data["num_buckets"],
        )
        for index, c in data["buckets"]:
            hist.counts[index] = c
        hist.count = data["count"]
        hist.total = data["total"]
        hist.max_value = data["max_value"]
        return hist

    def __repr__(self) -> str:
        return (
            f"<LatencyHistogram n={self.count} mean={self.mean:.6f}s "
            f"p99={self.percentile(99):.6f}s>"
        )


@dataclass
class Timer:
    """Accumulating stopwatch used for the per-phase timings in Section IV.

    Supports both context-manager use (``with timer: ...``) and explicit
    ``start``/``stop`` calls.  ``elapsed`` accumulates across activations,
    matching the paper's metrics which sum a phase's time over all data
    graphs touched by one query.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started_at is not None
