"""Shared utilities: exceptions, timing, memory estimation, seeded RNG."""

from repro.utils.errors import (
    ConfigurationError,
    GraphBuildError,
    GraphFormatError,
    MemoryLimitExceeded,
    ReproError,
    TimeLimitExceeded,
)
from repro.utils.memory import deep_size_of, format_bytes
from repro.utils.rng import make_rng, spawn_rng
from repro.utils.timing import Deadline, Timer

__all__ = [
    "ConfigurationError",
    "Deadline",
    "GraphBuildError",
    "GraphFormatError",
    "MemoryLimitExceeded",
    "ReproError",
    "TimeLimitExceeded",
    "Timer",
    "deep_size_of",
    "format_bytes",
    "make_rng",
    "spawn_rng",
]
