"""Int-bitset kernels for candidate sets over dense vertex ids.

Vertices of a :class:`~repro.graph.labeled_graph.Graph` are dense integers
``0..n-1``, so a *set of data vertices* packs into one Python big int with
bit ``v`` set iff vertex ``v`` is a member.  Every set operation the
filtering and enumeration hot paths need then becomes a single C-level
big-int instruction:

* intersection — ``a & b``;
* union — ``a | b``;
* emptiness of an intersection — ``a & b != 0`` (CFL's "adjacent to some
  candidate" test);
* cardinality — ``int.bit_count()`` (popcount);
* membership — ``(a >> v) & 1``.

For the graph sizes this reproduction handles (tens to a few thousand
vertices per data graph) a bitmap is a handful of machine words, so the
kernels beat Python ``set`` objects on both time and memory by a wide
margin; the microbenchmarks (``python -m repro bench-micro``) track the
gap.

The only non-trivial kernel is decoding a bitmap back into vertex ids,
which :func:`iter_bits` does chunk-wise (one 256-bit window at a time) so
that the per-bit work never touches the full-width integer.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit_list",
    "bitmap_bytes",
    "iter_bits",
    "pack_bits",
]

#: Window width for chunked bit decoding.  Wide enough that the outer
#: shift loop is rare, narrow enough that ``chunk & -chunk`` stays cheap.
_CHUNK_BITS = 256
_CHUNK_MASK = (1 << _CHUNK_BITS) - 1


def pack_bits(vertices: Iterable[int]) -> int:
    """Pack vertex ids into one int bitmap (duplicates collapse)."""
    bitmap = 0
    for v in vertices:
        bitmap |= 1 << v
    return bitmap


def iter_bits(bitmap: int) -> Iterator[int]:
    """Yield the set bit positions of ``bitmap`` in ascending order."""
    offset = 0
    while bitmap:
        chunk = bitmap & _CHUNK_MASK
        while chunk:
            low = chunk & -chunk
            yield offset + low.bit_length() - 1
            chunk ^= low
        bitmap >>= _CHUNK_BITS
        offset += _CHUNK_BITS


def bit_list(bitmap: int) -> list[int]:
    """The set bit positions of ``bitmap`` as an ascending list."""
    return list(iter_bits(bitmap))


def bitmap_bytes(bitmap: int) -> int:
    """Retained size of one bitmap in bytes (its occupied bit span)."""
    return (bitmap.bit_length() + 7) // 8
