"""Bitset kernels for candidate sets over dense vertex ids.

Vertices of a :class:`~repro.graph.labeled_graph.Graph` are dense integers
``0..n-1``, so a *set of data vertices* packs into a bitmap with bit ``v``
set iff vertex ``v`` is a member.  Every set operation the filtering and
enumeration hot paths need then becomes a handful of machine instructions:

* intersection — ``a & b``;
* union — ``a | b``;
* emptiness of an intersection — ``a & b != 0`` (CFL's "adjacent to some
  candidate" test);
* cardinality — popcount;
* membership — ``(a >> v) & 1``.

Two interchangeable backends implement that contract behind the
:class:`BitsetKernel` interface:

:class:`PythonBitsetKernel` (always available)
    Bitmaps are Python arbitrary-precision ints; one C-level bignum
    instruction per operation.  For graphs of tens to a few hundred
    vertices a bitmap is a couple of machine words and this backend is
    unbeatable — no wrapper objects, no per-call dispatch.

``NumpyBitsetKernel`` (:mod:`repro.utils.bitset_numpy`, optional)
    Bitmaps are fixed-width ``uint64`` word-block arrays.  Single-bitmap
    operations cost a numpy call, but whole *frontiers* of bitmaps batch
    into one vectorized AND/ANDNOT/popcount — the regime where big-int
    bitmaps lose is exactly the multi-thousand-vertex data graphs the
    massive-single-graph workload targets.  Requires the ``[perf]``
    extra (``pip install repro[perf]``); everything degrades cleanly to
    the python backend when numpy is absent.

Backend selection is global-by-default and per-graph-size aware: the
``REPRO_BITSET_BACKEND`` environment variable (or the ``--bitset-backend``
CLI flag, which sets it) picks ``python``, ``numpy`` or ``auto``; ``auto``
chooses numpy only when it is importable *and* the data graph spans at
least :data:`AUTO_MIN_VERTICES` vertices, so the paper's AIDS/PDBS-scale
reproduction path keeps the faster-for-small-graphs big-int kernels.

The module-level functions (:func:`pack_bits`, :func:`iter_bits`,
:func:`bit_list`, :func:`bitmap_bytes`) remain the int-bitmap primitives
used by the pure-python hot paths; they are also what
:class:`PythonBitsetKernel` delegates to.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager

__all__ = [
    "AUTO_MIN_VERTICES",
    "BACKEND_NAMES",
    "BitsetKernel",
    "PythonBitsetKernel",
    "available_backends",
    "backend_override",
    "bit_list",
    "bitmap_bytes",
    "default_backend",
    "get_kernel",
    "iter_bits",
    "numpy_available",
    "pack_bits",
    "python_kernel",
    "set_default_backend",
]

#: Window width for chunked bit decoding.  Wide enough that the outer
#: shift loop is rare, narrow enough that ``chunk & -chunk`` stays cheap.
_CHUNK_BITS = 256
_CHUNK_MASK = (1 << _CHUNK_BITS) - 1

#: The recognised backend names (``auto`` resolves to one of the others).
BACKEND_NAMES = ("python", "numpy", "auto")

#: Smallest data graph (in vertices) for which ``auto`` picks the numpy
#: backend.  Below this a bitmap is a handful of machine words and the
#: big-int kernels win on per-op overhead; above it, batch word-block
#: operations amortize the numpy call cost.  16 words of 64 bits.
AUTO_MIN_VERTICES = 1024


def pack_bits(vertices: Iterable[int]) -> int:
    """Pack vertex ids into one int bitmap (duplicates collapse)."""
    bitmap = 0
    for v in vertices:
        bitmap |= 1 << v
    return bitmap


def iter_bits(bitmap: int) -> Iterator[int]:
    """Yield the set bit positions of ``bitmap`` in ascending order."""
    offset = 0
    while bitmap:
        chunk = bitmap & _CHUNK_MASK
        while chunk:
            low = chunk & -chunk
            yield offset + low.bit_length() - 1
            chunk ^= low
        bitmap >>= _CHUNK_BITS
        offset += _CHUNK_BITS


def bit_list(bitmap: int) -> list[int]:
    """The set bit positions of ``bitmap`` as an ascending list."""
    return list(iter_bits(bitmap))


def bitmap_bytes(bitmap: int) -> int:
    """Retained size of one int bitmap in bytes (its occupied bit span)."""
    return (bitmap.bit_length() + 7) // 8


# ----------------------------------------------------------------------
# The kernel interface
# ----------------------------------------------------------------------


class BitsetKernel:
    """The operation surface a bitset backend must provide.

    A *bitmap* is backend-native (an ``int`` for the python backend, a
    ``uint64`` ndarray for the numpy backend) and always represents a
    subset of ``0..n-1`` for the ``n`` it was created with.  Binary
    operations require both operands from the same backend (and, for the
    numpy backend, the same width).

    ``to_bytes``/``from_bytes`` define the backend-agnostic wire form —
    little-endian words — so candidate payloads pickled by one backend
    can be revived by the other (e.g. across the worker-pool boundary
    when a worker lacks numpy).
    """

    name: str = "abstract"

    # -- construction ---------------------------------------------------
    def words(self, num_vertices: int) -> int:
        """Storage words (64-bit) for bitmaps over ``num_vertices``."""
        return (num_vertices + 63) >> 6

    def zero(self, num_vertices: int):
        raise NotImplementedError

    def pack(self, vertices: Iterable[int], num_vertices: int):
        raise NotImplementedError

    def from_int(self, bitmap: int, num_vertices: int):
        raise NotImplementedError

    def to_int(self, bits) -> int:
        raise NotImplementedError

    def to_bytes(self, bits) -> bytes:
        raise NotImplementedError

    def from_bytes(self, payload: bytes, num_vertices: int):
        raise NotImplementedError

    # -- single-bitmap kernels ------------------------------------------
    def and_(self, a, b):
        raise NotImplementedError

    def or_(self, a, b):
        raise NotImplementedError

    def andnot(self, a, b):
        """``a & ~b`` (set difference)."""
        raise NotImplementedError

    def popcount(self, bits) -> int:
        raise NotImplementedError

    def any(self, bits) -> bool:
        raise NotImplementedError

    def test(self, bits, v: int) -> bool:
        raise NotImplementedError

    def equal(self, a, b) -> bool:
        raise NotImplementedError

    # -- batch kernels (generic fallbacks; numpy vectorizes these) ------
    def and_many(self, rows: Sequence):
        """Reduce-AND over ``rows`` (must be non-empty)."""
        out = rows[0]
        for row in rows[1:]:
            out = self.and_(out, row)
        return out

    def or_many(self, rows: Sequence, num_vertices: int):
        """Reduce-OR over ``rows`` (empty reduces to the zero bitmap)."""
        out = self.zero(num_vertices)
        for row in rows:
            out = self.or_(out, row)
        return out

    # -- decoding and accounting ----------------------------------------
    def iter_bits(self, bits) -> Iterator[int]:
        raise NotImplementedError

    def bit_list(self, bits) -> list[int]:
        return list(self.iter_bits(bits))

    def memory_bytes(self, bits) -> int:
        """Backend-accurate retained size of one bitmap in bytes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<BitsetKernel {self.name}>"


class PythonBitsetKernel(BitsetKernel):
    """The pure-python big-int backend (always available)."""

    name = "python"

    def zero(self, num_vertices: int) -> int:
        return 0

    def pack(self, vertices: Iterable[int], num_vertices: int) -> int:
        return pack_bits(vertices)

    def from_int(self, bitmap: int, num_vertices: int) -> int:
        return bitmap

    def to_int(self, bits: int) -> int:
        return bits

    def to_bytes(self, bits: int) -> bytes:
        return bits.to_bytes(max(1, (bits.bit_length() + 7) // 8), "little")

    def from_bytes(self, payload: bytes, num_vertices: int) -> int:
        return int.from_bytes(payload, "little")

    def and_(self, a: int, b: int) -> int:
        return a & b

    def or_(self, a: int, b: int) -> int:
        return a | b

    def andnot(self, a: int, b: int) -> int:
        return a & ~b

    def popcount(self, bits: int) -> int:
        return bits.bit_count()

    def any(self, bits: int) -> bool:
        return bits != 0

    def test(self, bits: int, v: int) -> bool:
        return (bits >> v) & 1 == 1

    def equal(self, a: int, b: int) -> bool:
        return a == b

    def iter_bits(self, bits: int) -> Iterator[int]:
        return iter_bits(bits)

    def bit_list(self, bits: int) -> list[int]:
        return bit_list(bits)

    def memory_bytes(self, bits: int) -> int:
        return bitmap_bytes(bits)


#: The singleton python kernel (stateless, shared by everything).
_PYTHON_KERNEL = PythonBitsetKernel()

#: Lazily imported numpy kernel singleton; ``False`` = tried and absent.
_NUMPY_KERNEL: BitsetKernel | None | bool = None


def python_kernel() -> PythonBitsetKernel:
    """The shared pure-python kernel instance."""
    return _PYTHON_KERNEL


def _numpy_kernel() -> BitsetKernel | None:
    """The shared numpy kernel, or ``None`` when numpy is unavailable."""
    global _NUMPY_KERNEL
    if _NUMPY_KERNEL is None:
        try:
            from repro.utils.bitset_numpy import NumpyBitsetKernel
        except ImportError:
            _NUMPY_KERNEL = False
        else:
            _NUMPY_KERNEL = NumpyBitsetKernel()
    return _NUMPY_KERNEL if _NUMPY_KERNEL is not False else None


def numpy_available() -> bool:
    """Whether the numpy word-block backend can be used."""
    return _numpy_kernel() is not None


def available_backends() -> tuple[str, ...]:
    """The backend names usable right now (``auto`` always included)."""
    names = ["python"]
    if numpy_available():
        names.append("numpy")
    names.append("auto")
    return tuple(names)


def _env_backend() -> str:
    name = os.environ.get("REPRO_BITSET_BACKEND", "auto").strip().lower()
    if name not in BACKEND_NAMES:
        warnings.warn(
            f"REPRO_BITSET_BACKEND={name!r} is not one of {BACKEND_NAMES}; "
            "using 'auto'",
            stacklevel=3,
        )
        return "auto"
    return name


#: The process-wide default backend name; ``None`` = follow the env var.
_DEFAULT_BACKEND: str | None = None


def default_backend() -> str:
    """The effective default backend name (flag/env resolved, not auto)."""
    return _DEFAULT_BACKEND if _DEFAULT_BACKEND is not None else _env_backend()


def set_default_backend(name: str | None) -> None:
    """Set the process-wide backend (``None`` restores env-var behavior).

    The CLI also exports ``REPRO_BITSET_BACKEND`` so subprocess executors
    inherit the choice; this setter covers in-process callers.
    """
    if name is not None and name not in BACKEND_NAMES:
        raise ValueError(f"unknown bitset backend {name!r}; expected {BACKEND_NAMES}")
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name


@contextmanager
def backend_override(name: str):
    """Temporarily force the default backend (tests and benchmarks)."""
    previous = _DEFAULT_BACKEND
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


def get_kernel(
    backend: str | None = None, *, num_vertices: int | None = None
) -> BitsetKernel:
    """Resolve a backend name to a kernel instance.

    ``backend=None`` uses the process default (flag/env var, else
    ``auto``).  ``auto`` picks numpy only when it is importable and
    ``num_vertices`` (when known) reaches :data:`AUTO_MIN_VERTICES`.
    Requesting ``numpy`` without numpy installed warns once and falls
    back to the python backend — the ``[perf]`` extra is optional and
    must never take the tier-1 path down with it.
    """
    name = backend if backend is not None else default_backend()
    if name == "auto":
        if num_vertices is not None and num_vertices >= AUTO_MIN_VERTICES:
            kernel = _numpy_kernel()
            if kernel is not None:
                return kernel
        return _PYTHON_KERNEL
    if name == "numpy":
        kernel = _numpy_kernel()
        if kernel is None:
            warnings.warn(
                "bitset backend 'numpy' requested but numpy is not importable; "
                "falling back to 'python' (install repro[perf] for the "
                "word-block backend)",
                stacklevel=2,
            )
            return _PYTHON_KERNEL
        return kernel
    if name == "python":
        return _PYTHON_KERNEL
    raise ValueError(f"unknown bitset backend {name!r}; expected {BACKEND_NAMES}")
