"""Crash-consistent file writes shared by the store and the CLI.

Every artifact this project writes — graph database files, benchmark
reports, index snapshots — must never be observable half-written: a kill
mid-write would otherwise leave a file that parses as truncated garbage
on the next run.  The standard recipe is used throughout: write to a
temporary file in the *same directory* (so the rename cannot cross a
filesystem boundary), flush and fsync the data, atomically rename over
the destination, then fsync the directory so the rename itself is
durable.  Readers therefore see either the old content or the new
content, never a mixture.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "append_bytes_durable",
    "append_line_durable",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
]


def fsync_dir(directory: str | os.PathLike) -> None:
    """Flush a directory entry so a completed rename survives a crash.

    Not every platform allows opening a directory for fsync; failure to
    sync the *metadata* only weakens durability (the rename may be lost
    on power failure), never atomicity, so errors are ignored.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + atomic rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with tmp.open("wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Text-mode counterpart of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


def append_bytes_durable(path: str | Path, data: bytes) -> None:
    """Append raw bytes through one ``O_APPEND`` descriptor and fsync.

    The byte-level primitive under :func:`append_line_durable`; the
    mutation log also uses it directly to write a deliberately torn
    record prefix when the ``wal.torn_append`` fault site is armed.
    """
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        view = memoryview(data)
        while view:  # partial appends are near-impossible on regular files
            written = os.write(fd, view)
            view = view[written:]
        os.fsync(fd)
    finally:
        os.close(fd)


def append_line_durable(path: str | Path, line: str) -> None:
    """Append one whole line to a journal file, signal-tear-free.

    Buffered ``fh.write(...)``/``fh.flush()`` appends can be torn by a
    Python-level signal handler raising between the two calls (part of
    the line flushed, the rest lost in the dropped buffer).  Here the
    fully encoded line — trailing newline included — goes to an
    ``O_APPEND`` descriptor in (normally) one ``os.write`` syscall, which
    a Python signal handler cannot interrupt midway: the handler only
    runs between bytecodes, after the syscall returned.  SIGTERM/SIGINT
    during a journaled run therefore leave only complete lines behind.
    (A SIGKILL can still tear the line at the OS level; readers already
    tolerate one torn final line.)
    """
    data = line.encode("utf-8")
    if not data.endswith(b"\n"):
        data += b"\n"
    append_bytes_durable(Path(path), data)
