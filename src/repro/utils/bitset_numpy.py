"""The numpy ``uint64`` word-block bitset backend.

A bitmap over ``n`` dense vertex ids is a C-contiguous ndarray of
``ceil(n / 64)`` little-endian-ordered ``uint64`` words: bit ``v`` lives in
word ``v >> 6`` at position ``v & 63``.  Single-bitmap operations map to
one vectorized ufunc call each; the batch kernels are the point of the
backend — a whole frontier of bitmaps (one row per candidate) ANDs,
AND-NOTs and popcounts in a single call, which is how the enumeration
kernel collapses its deepest level and how the seed filters process every
query vertex at once.

Popcount uses :func:`numpy.bitwise_count` where available (numpy >= 2.0)
and falls back to the classic byte-wise lookup-table trick otherwise.
Decoding a bitmap back to vertex ids goes through ``unpackbits`` on the
little-endian byte view (or, on big-endian hosts, a chunk-wise word loop
— correctness never depends on host byte order).

This module imports numpy at module load; import it only through
:func:`repro.utils.bitset.get_kernel`, which guards the import and falls
back to the pure-python backend.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Iterator

import numpy as np

from repro.utils.bitset import BitsetKernel

__all__ = ["NumpyBitsetKernel"]

_LITTLE_ENDIAN = sys.byteorder == "little"

#: Per-byte popcounts, the lookup-table fallback for numpy < 2.0.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_ONE = np.uint64(1)
_WORD_BITS = np.uint64(63)


def _popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (any shape)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    contiguous = np.ascontiguousarray(words)
    return _POPCOUNT8[contiguous.view(np.uint8).reshape(*words.shape, 8)].sum(
        axis=-1, dtype=np.uint64
    )


class NumpyBitsetKernel(BitsetKernel):
    """Fixed-width uint64 word-block bitmaps with vectorized batch ops."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Construction and conversion
    # ------------------------------------------------------------------

    def zero(self, num_vertices: int) -> np.ndarray:
        return np.zeros(self.words(num_vertices), dtype=np.uint64)

    def pack(self, vertices: Iterable[int], num_vertices: int) -> np.ndarray:
        bits = self.zero(num_vertices)
        idx = np.fromiter(vertices, dtype=np.int64)
        if idx.size:
            np.bitwise_or.at(
                bits, idx >> 6, _ONE << (idx.astype(np.uint64) & _WORD_BITS)
            )
        return bits

    def from_int(self, bitmap: int, num_vertices: int) -> np.ndarray:
        nwords = self.words(num_vertices)
        payload = bitmap.to_bytes(nwords * 8, "little")
        words = np.frombuffer(payload, dtype="<u8").astype(np.uint64)
        return words

    def to_int(self, bits: np.ndarray) -> int:
        return int.from_bytes(self.to_bytes(bits), "little")

    def to_bytes(self, bits: np.ndarray) -> bytes:
        return np.ascontiguousarray(bits, dtype="<u8").tobytes()

    def from_bytes(self, payload: bytes, num_vertices: int) -> np.ndarray:
        bits = self.zero(num_vertices)
        span = bits.size * 8
        padded = payload[:span].ljust(span, b"\0")
        bits[:] = np.frombuffer(padded, dtype="<u8")
        return bits

    # ------------------------------------------------------------------
    # Single-bitmap kernels
    # ------------------------------------------------------------------

    def and_(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a & b

    def or_(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a | b

    def andnot(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a & ~b

    def popcount(self, bits: np.ndarray) -> int:
        return int(_popcount_words(bits).sum())

    def any(self, bits: np.ndarray) -> bool:
        return bool(bits.any())

    def test(self, bits: np.ndarray, v: int) -> bool:
        return bool((bits[v >> 6] >> np.uint64(v & 63)) & _ONE)

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        return bool(np.array_equal(a, b))

    # ------------------------------------------------------------------
    # Batch kernels (whole-frontier operations, the backend's raison d'être)
    # ------------------------------------------------------------------

    def and_many(self, rows) -> np.ndarray:
        if isinstance(rows, np.ndarray):
            return np.bitwise_and.reduce(rows, axis=0)
        return np.bitwise_and.reduce(np.asarray(rows), axis=0)

    def or_many(self, rows, num_vertices: int) -> np.ndarray:
        if len(rows) == 0:
            return self.zero(num_vertices)
        if isinstance(rows, np.ndarray):
            return np.bitwise_or.reduce(rows, axis=0)
        return np.bitwise_or.reduce(np.asarray(rows), axis=0)

    @staticmethod
    def stack(rows) -> np.ndarray:
        """Frontier matrix: one bitmap per row (copies into one block)."""
        return np.vstack(rows)

    @staticmethod
    def rows_and(matrix: np.ndarray, row: np.ndarray) -> np.ndarray:
        """AND one bitmap into every row of a frontier matrix."""
        return matrix & row

    @staticmethod
    def popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcounts of a frontier matrix (int64)."""
        return _popcount_words(matrix).sum(axis=1, dtype=np.int64)

    @staticmethod
    def clear_own_bits(matrix: np.ndarray, vertices: np.ndarray) -> np.ndarray:
        """In row ``i``, clear bit ``vertices[i]`` (in place; returned)."""
        rows = np.arange(len(vertices))
        matrix[rows, vertices >> 6] &= ~(
            _ONE << (vertices.astype(np.uint64) & _WORD_BITS)
        )
        return matrix

    # ------------------------------------------------------------------
    # Decoding and accounting
    # ------------------------------------------------------------------

    def bit_array(self, bits: np.ndarray) -> np.ndarray:
        """Set bit positions as an ascending int64 array (vectorized)."""
        if _LITTLE_ENDIAN:
            payload = np.ascontiguousarray(bits).view(np.uint8)
            flat = np.unpackbits(payload, bitorder="little")
            return np.nonzero(flat)[0].astype(np.int64)
        return np.array(list(self.iter_bits(bits)), dtype=np.int64)

    def iter_bits(self, bits: np.ndarray) -> Iterator[int]:
        if _LITTLE_ENDIAN:
            yield from self.bit_array(bits).tolist()
            return
        for w in np.nonzero(bits)[0].tolist():
            word = int(bits[w])
            base = w << 6
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def bit_list(self, bits: np.ndarray) -> list[int]:
        return self.bit_array(bits).tolist()

    def memory_bytes(self, bits: np.ndarray) -> int:
        """Fixed ``ceil(n/64)`` words regardless of occupancy."""
        return bits.nbytes
