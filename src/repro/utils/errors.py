"""Exception hierarchy shared across the library.

The paper's experimental protocol distinguishes three failure modes for a
competing algorithm: running out of the time budget (OOT), running out of
memory (OOM), and plain misuse of the API.  Each gets a dedicated exception
so the benchmark harness can record the outcome the same way the paper's
tables do (entries such as "OOT" in Table VI and "OOM" in Table VIII).

The execution layer (:mod:`repro.exec`) extends the taxonomy at the
*result* level rather than with more exceptions: any exception escaping a
query — these two, :class:`InjectedFaultError`, ``MemoryError``, or
anything unexpected — is classified into a structured
``QueryFailure`` (kind ``oot``/``oom``/``crash``/``error``) instead of
propagating, so one failing query never aborts a run.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphBuildError(ReproError):
    """Raised when a :class:`~repro.graph.builder.GraphBuilder` receives
    inconsistent input (unknown vertex ids, self loops in strict mode, ...)."""


class GraphFormatError(ReproError):
    """Raised when a graph database file cannot be parsed.

    ``lineno`` (1-based) and ``line`` carry the offending location when
    known, so callers can report parse failures structurally instead of
    re-parsing the message.
    """

    def __init__(
        self, message: str, lineno: int | None = None, line: str | None = None
    ) -> None:
        super().__init__(message)
        self.lineno = lineno
        self.line = line


class SnapshotError(ReproError):
    """Raised when an index snapshot cannot be trusted.

    ``reason`` is a stable machine-readable code: ``missing``,
    ``truncated``, ``magic``, ``version``, ``checksum``, ``family``,
    ``params``, ``db-fingerprint``, or ``payload``.  The store treats
    *every* reason the same way — fall back to a rebuild — but tests and
    operators need to know which defence fired.

    The write-ahead mutation log adds three reasons of its own:
    ``wal-torn`` (the final record was incomplete — the normal artifact
    of a kill mid-append; the valid prefix is kept), ``wal-corrupt``
    (a record *before* the end failed its checksum or sequence check —
    bit rot, not a crash; the log is truncated at the first bad record)
    and ``wal-base`` (the log was journaled against a different base
    database; it is quarantined rather than replayed).
    """

    def __init__(self, message: str, reason: str = "payload") -> None:
        super().__init__(message)
        self.reason = reason


class TimeLimitExceeded(ReproError):
    """Raised cooperatively when a :class:`~repro.utils.timing.Deadline`
    expires inside indexing, filtering, or enumeration (paper: "OOT")."""


class MemoryLimitExceeded(ReproError):
    """Raised when an index grows past its configured memory budget
    (paper: "OOM")."""


class ConfigurationError(ReproError):
    """Raised for invalid engine or algorithm configuration."""


class InjectedFaultError(ReproError, RuntimeError):
    """Raised by the ``error`` kind of :mod:`repro.exec.faults`.

    Subclasses ``RuntimeError`` so code under test that catches broad
    runtime errors treats an injected fault like any other unexpected
    exception; the execution layer classifies it as an ``error`` failure.
    """
