"""Deterministic structure-size estimation.

The paper probes resident memory with JProfiler and ``/proc/<pid>``
(Tables VII and IX).  A reproduction needs something deterministic and
portable, so we recursively walk Python object graphs with
``sys.getsizeof``.  Shared sub-objects are counted once (by id), matching
what a heap profiler would report for the structure's retained size.
"""

from __future__ import annotations

import sys
from collections import deque
from collections.abc import Mapping

__all__ = ["deep_size_of", "format_bytes"]


def deep_size_of(obj: object) -> int:
    """Return the retained size of ``obj`` in bytes.

    Follows containers (dict/list/tuple/set/frozenset/deque), instance
    ``__dict__``s and ``__slots__``.  Every reachable object is counted
    exactly once, so aliased structures are not double-counted.
    """
    seen: set[int] = set()
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        oid = id(current)
        if oid in seen:
            continue
        seen.add(oid)
        total += sys.getsizeof(current)
        if isinstance(current, Mapping):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset, deque)):
            stack.extend(current)
        if hasattr(current, "__dict__"):
            stack.append(vars(current))
        slots = getattr(type(current), "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if hasattr(current, name):
                stack.append(getattr(current, name))
    return total


def format_bytes(num_bytes: float) -> str:
    """Render a byte count the way the paper's tables do (MB with 1-4
    significant decimals for small values)."""
    mb = num_bytes / (1024 * 1024)
    if mb >= 100:
        return f"{mb:,.0f} MB"
    if mb >= 1:
        return f"{mb:.1f} MB"
    return f"{mb:.4f} MB"
