"""repro — subgraph query processing with efficient subgraph matching.

A from-scratch Python reproduction of Sun & Luo, "Scaling Up Subgraph
Query Processing with Efficient Subgraph Matching" (ICDE 2019): the IFV
algorithms (CT-Index, Grapes, GGSX), the vcFV algorithms derived from
subgraph matching (GraphQL, CFL, CFQL), their IvcFV combinations, and the
full experimental harness.

Quickstart::

    from repro import GraphDatabase, create_engine
    from repro.graph import generate_database, random_walk_query

    db = generate_database(num_graphs=100, num_vertices=30,
                           avg_degree=3.0, num_labels=5, seed=0)
    engine = create_engine(db, "CFQL")
    engine.build_index()                       # no-op for vcFV algorithms
    query = random_walk_query(db[0], num_edges=6, seed=1)
    result = engine.query(query)
    print(sorted(result.answers))
"""

from repro.core import (
    ALGORITHM_CATEGORIES,
    ALGORITHM_NAMES,
    QueryResult,
    QuerySetReport,
    SubgraphQueryEngine,
    aggregate_results,
    create_engine,
    create_pipeline,
)
from repro.graph import Graph, GraphBuilder, GraphDatabase

__version__ = "1.0.0"

__all__ = [
    "ALGORITHM_CATEGORIES",
    "ALGORITHM_NAMES",
    "Graph",
    "GraphBuilder",
    "GraphDatabase",
    "QueryResult",
    "QuerySetReport",
    "SubgraphQueryEngine",
    "aggregate_results",
    "create_engine",
    "create_pipeline",
    "__version__",
]
