"""The subgraph query engine: one database, one algorithm, many queries.

:class:`SubgraphQueryEngine` owns a :class:`~repro.graph.database.
GraphDatabase` and a :class:`~repro.core.pipeline.QueryPipeline`, and adds
the operational concerns around them: index construction under a time
limit, per-query time limits (the paper's 10-minute budget), database
updates that keep the index consistent (the maintenance cost the paper's
introduction weighs against IFV methods), and memory accounting for
Tables VII/IX.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cache import CachingPipeline
from repro.core.metrics import QueryResult
from repro.core.pipeline import QueryPipeline, fallback_pipeline
from repro.exec import faults
from repro.exec.base import InProcessExecutor, QueryExecutor
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.matching.plan import PlanCache, QueryPlan
from repro.utils.errors import (
    ConfigurationError,
    MemoryLimitExceeded,
    SnapshotError,
    TimeLimitExceeded,
)
from repro.utils.timing import Deadline, Timer

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.store.manager import IndexStore

__all__ = ["SubgraphQueryEngine"]


class SubgraphQueryEngine:
    """Answers subgraph queries over a database with one algorithm.

    Typical use::

        engine = SubgraphQueryEngine(db, pipeline)   # or create_engine(db, "CFQL")
        engine.build_index()                         # no-op for vcFV algorithms
        result = engine.query(q, time_limit=600.0)
        print(result.answers)

    Every query is routed through a :class:`~repro.exec.base.QueryExecutor`
    (cooperative in-process containment by default; pass a
    :class:`~repro.exec.pool.SubprocessExecutor` for hard kill-based
    limits), so per-query failures come back as flagged results instead of
    exceptions.
    """

    def __init__(
        self,
        db: GraphDatabase,
        pipeline: QueryPipeline,
        executor: QueryExecutor | None = None,
        cache: int = 0,
        plan_cache: int = 256,
    ) -> None:
        self.db = db
        #: LRU of compiled query plans keyed by canonical query form, so a
        #: repeated query — including an isomorphic one under different
        #: vertex ids — reuses its validated orders and per-query memos
        #: across the whole database.  ``plan_cache`` is its capacity;
        #: 0 disables plan caching (each query compiles a throwaway plan).
        self.plans: PlanCache | None = PlanCache(plan_cache) if plan_cache else None
        #: The GraphCache-style query-to-query result cache wrapped around
        #: the pipeline when ``cache > 0`` (its LRU capacity); None
        #: otherwise.  Per-query outcomes are stamped into
        #: ``QueryResult.metadata`` (``cache_hit``/``cache_pruned``);
        #: aggregate counters live on ``self.cache.stats``.  With a pool
        #: executor each worker holds its own copy of the cache, so the
        #: aggregate counters here only reflect in-process execution.
        self.cache: CachingPipeline | None = None
        if cache:
            pipeline = CachingPipeline(pipeline, capacity=cache)
            self.cache = pipeline
        self.pipeline = pipeline
        self.executor = executor if executor is not None else InProcessExecutor()
        self.indexing_time: float = 0.0
        self._index_built = not pipeline.uses_index
        #: True when the configured index failed to build and queries are
        #: answered by the fallback pipeline instead.
        self.degraded: bool = False
        #: "OOT" or "OOM" when degraded, None otherwise.
        self.degraded_reason: str | None = None
        #: "store" when the index was warm-started from a snapshot,
        #: "build" when it was built cold, None for index-free pipelines
        #: (or before build_index).
        self.index_source: str | None = None
        #: SnapshotError reason when a store was offered but its snapshot
        #: was rejected (missing/corrupt/stale/...) and the index rebuilt.
        self.store_recovery: str | None = None
        #: Failure message when saving the freshly built index to the
        #: store did not complete (the engine still answers normally —
        #: persistence is an optimisation, never a correctness gate).
        self.store_save_error: str | None = None
        #: The store attached by ``build_index(store=...)``; once set,
        #: ``add_graph``/``remove_graph`` journal durably through it.
        self.store: "IndexStore | None" = None
        #: Mutation-log recovery counters from the last warm start
        #: (folded_seq / log_records / replayed / truncated / reason /
        #: quarantined), None when no store was involved.
        self.wal_recovery: dict | None = None
        #: ``(request_key, op, gid)`` for every recovered mutation that
        #: journaled a client idempotency token, in journal order.  The
        #: service seeds its :class:`~repro.service.resilience.
        #: MutationDedup` window from these so a client retry across a
        #: crash-restart boundary is answered idempotently instead of
        #: double-applied (the at-least-once edge of
        #: ``wal.crash_before_ack``).
        self.recovered_request_keys: list[tuple[str, str, int]] = []
        #: Number of successful :meth:`compact_store` runs.
        self.compactions: int = 0

    @property
    def name(self) -> str:
        return self.pipeline.name

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    def build_index(
        self,
        time_limit: float | None = None,
        fallback: bool = False,
        store: "IndexStore | None" = None,
    ) -> float:
        """Build (or warm-start) the supporting index; returns the time.

        A no-op (0.0 seconds) for index-free algorithms.  Raises
        :class:`~repro.utils.errors.TimeLimitExceeded` when ``time_limit``
        expires — the paper's OOT condition for index construction — and
        :class:`~repro.utils.errors.MemoryLimitExceeded` when an index
        budget is blown (OOM).  With ``fallback=True`` neither aborts the
        configuration: the engine degrades to the corresponding index-free
        vcFV pipeline (see :func:`~repro.core.pipeline.fallback_pipeline`)
        and flags itself ``degraded``.

        With a :class:`~repro.store.IndexStore` the index is loaded from
        its snapshot when one exists and verifies (checksums, format
        version, build parameters, database fingerprint all match) —
        skipping the build entirely — and is saved back, crash-
        consistently, after any cold build.  A snapshot that fails *any*
        verification is never used: the engine rebuilds and records the
        rejection reason in ``store_recovery``.

        A store also makes the database *dynamic*: any mutations journaled
        in its write-ahead log (and its database snapshot, if compaction
        produced one) are recovered first and replayed idempotently —
        through the index snapshot's fold point database-side, past it
        through the live index's incremental hooks — so a warm start
        reproduces the exact acknowledged state a crash interrupted.
        Counters land in ``wal_recovery``; the store stays attached as
        ``self.store``, making later ``add_graph``/``remove_graph`` calls
        durable.
        """
        if store is not None:
            self.store = store
        store = self.store
        pending: list = []
        if store is not None:
            recovery = store.recover_mutations(self.db)
            self.wal_recovery = {
                "folded_seq": recovery.folded_seq,
                "log_records": len(recovery.records),
                "replayed": 0,
                "truncated": recovery.dropped,
                "reason": recovery.reason,
                "quarantined": recovery.quarantined,
            }
            pending = list(recovery.records)
            self.recovered_request_keys = [
                (r.request_key, r.op, r.gid)
                for r in pending
                if r.request_key is not None
            ]
        if not self.pipeline.uses_index:
            for record in pending:
                if record.apply(self.db):
                    self.wal_recovery["replayed"] += 1
            self._index_built = True
            self.indexing_time = 0.0
            return 0.0
        index = getattr(self.pipeline, "index", None)
        with Timer() as t:
            loaded = False
            db_fingerprint: str | None = None
            if store is not None and index is not None:
                from repro.store.snapshot import database_fingerprint

                snap_seq = 0
                try:
                    header = store.snapshot_header(index.name)
                    if isinstance(header.get("wal_seq"), int):
                        snap_seq = header["wal_seq"]
                except SnapshotError:
                    pass  # load_into below classifies the failure
                # Mutations the index snapshot already folded must be in
                # the database before the fingerprint comparison.
                for record in [r for r in pending if r.seq <= snap_seq]:
                    if record.apply(self.db):
                        self.wal_recovery["replayed"] += 1
                pending = [r for r in pending if r.seq > snap_seq]
                db_fingerprint = database_fingerprint(self.db)
                try:
                    store.load_into(index, self.db, db_fingerprint)
                    loaded = True
                    self.index_source = "store"
                except SnapshotError as exc:
                    self.store_recovery = exc.reason
            if loaded:
                # Replay the journal tail through the live index so the
                # warm-started pipeline answers exactly like a cold
                # rebuild of the full acknowledged mutation history.
                for record in pending:
                    if self._replay_record(record, live=True):
                        self.wal_recovery["replayed"] += 1
                pending = []
            else:
                # Cold build: fold every surviving record into the
                # database first, then build the index over the result.
                if pending:
                    for record in pending:
                        if record.apply(self.db) and self.wal_recovery:
                            self.wal_recovery["replayed"] += 1
                    pending = []
                    db_fingerprint = None  # database changed since computed
                try:
                    faults.trip("index.build", tag=self.name)
                    self.pipeline.build_index(self.db, deadline=Deadline(time_limit))
                    self.index_source = "build"
                except (TimeLimitExceeded, MemoryLimitExceeded) as exc:
                    if not fallback:
                        raise
                    self.degraded = True
                    self.degraded_reason = (
                        "OOT" if isinstance(exc, TimeLimitExceeded) else "OOM"
                    )
                    self.pipeline = fallback_pipeline(self.pipeline)
                    if self.cache is not None:
                        # fallback_pipeline preserves the caching wrapper.
                        self.cache = self.pipeline  # type: ignore[assignment]
                    self.executor.invalidate()
                else:
                    if store is not None and index is not None:
                        try:
                            store.save(
                                index,
                                self.db,
                                db_fingerprint,
                                wal_seq=store.wal.last_seq,
                            )
                        except Exception as exc:
                            # A failed save (disk full, injected torn
                            # write, ...) only costs the next process its
                            # warm start; this one already has the index.
                            self.store_save_error = (
                                f"{type(exc).__name__}: {exc}"
                            )
        self.indexing_time = t.elapsed
        self._index_built = True
        return self.indexing_time

    def _replay_record(self, record, live: bool) -> bool:
        """Apply one journaled mutation; ``live`` also maintains the index.

        Idempotent by graph id, like
        :meth:`~repro.store.wal.MutationRecord.apply`, but routes applied
        mutations through the pipeline's incremental hooks so a warm-
        started index tracks the replay.
        """
        if record.op == "add":
            if record.gid in self.db:
                return False
            self.db.add_graph_with_id(record.gid, record.graph)
            if live:
                self.pipeline.on_graph_added(record.gid, record.graph)
            return True
        if record.gid not in self.db:
            return False
        graph = self.db.remove_graph(record.gid)
        if live:
            self.pipeline.on_graph_removed(record.gid, graph)
        return True

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def _annotate(self, result: QueryResult) -> QueryResult:
        """Stamp engine-level provenance onto a result's metadata.

        Callers downstream (benchmark reports, services) must be able to
        tell a full-fidelity answer from one served in a degraded or
        recovered configuration without holding a reference to the engine.
        """
        result.metadata["degraded"] = self.degraded
        if self.degraded_reason is not None:
            result.metadata["degraded_reason"] = self.degraded_reason
        if self.index_source is not None:
            result.metadata["index_source"] = self.index_source
        if self.store_recovery is not None:
            result.metadata["store_recovery"] = self.store_recovery
        return result

    def _plan_for(self, query: Graph) -> tuple[QueryPlan | None, str]:
        """The query's compiled plan and the cache outcome for metadata."""
        if self.plans is None:
            return None, "off"
        return self.plans.get(query)

    def query(self, query: Graph, time_limit: float | None = None) -> QueryResult:
        """Answer one subgraph query (Definition II.2).

        ``time_limit`` is the per-query budget; on expiry the returned
        result is flagged ``timed_out`` with whatever was computed so far.
        """
        if query.num_vertices == 0:
            raise ConfigurationError("query graph must have at least one vertex")
        if not self._index_built:
            raise ConfigurationError(
                f"{self.name} requires build_index() before querying"
            )
        plan, outcome = self._plan_for(query)
        result = self._annotate(
            self.executor.run(self.pipeline, query, self.db, time_limit, plan=plan)
        )
        result.metadata["plan_cache"] = outcome
        return result

    def query_many(
        self, queries: list[Graph], time_limit: float | None = None
    ) -> list[QueryResult]:
        """Answer a whole query set with a per-query time limit.

        Routed through the executor's batch entry point, so a pool
        executor fans the set across its workers; results always come
        back in input order.  Each query is compiled (or fetched from the
        plan cache) exactly once here — a batch repeating one query ships
        one shared plan to every worker.
        """
        for q in queries:
            if q.num_vertices == 0:
                raise ConfigurationError("query graph must have at least one vertex")
        if not self._index_built:
            raise ConfigurationError(
                f"{self.name} requires build_index() before querying"
            )
        planned = [self._plan_for(q) for q in queries]
        results = [
            self._annotate(r)
            for r in self.executor.run_many(
                self.pipeline,
                queries,
                self.db,
                time_limit,
                plans=[plan for plan, _ in planned],
            )
        ]
        for result, (_, outcome) in zip(results, planned):
            result.metadata["plan_cache"] = outcome
        return results

    def find_embeddings(
        self,
        query: Graph,
        gid: int,
        limit: int | None = None,
        time_limit: float | None = None,
    ) -> list[dict[int, int]]:
        """Enumerate subgraph isomorphisms from ``query`` into one data
        graph (Definition II.3 — full subgraph matching, not just the
        containment test).

        Uses the pipeline's own matcher when it has one (vcFV/IvcFV), the
        CFQL matcher otherwise, so results are consistent with the
        engine's configuration.  ``limit`` bounds the number of embeddings
        returned; embeddings map query vertices to data vertices.
        """
        matcher = getattr(self.pipeline, "matcher", None)
        if matcher is None:
            from repro.matching.cfql import CFQLMatcher

            matcher = CFQLMatcher()
        plan, _ = self._plan_for(query)
        outcome = matcher.run(
            query,
            self.db[gid],
            limit=limit,
            collect=True,
            deadline=Deadline(time_limit),
            plan=plan,
        )
        return outcome.embeddings

    # ------------------------------------------------------------------
    # Database maintenance (the index-update story)
    # ------------------------------------------------------------------

    def add_graph(
        self,
        graph: Graph,
        store: "IndexStore | None" = None,
        request_key: str | None = None,
    ) -> int:
        """Insert a data graph, updating the index if one exists.

        With a store (the argument, or the one attached by
        ``build_index(store=...)``) the insertion is journaled durably in
        the write-ahead mutation log *before* any in-memory state changes,
        so an acknowledged insertion survives a crash.  ``request_key``
        (the client's idempotency token, if any) rides along in the
        journal record so recovery can rebuild the dedup window.

        Before ``build_index`` has run there is no index and no pool
        state to maintain, so the pipeline hooks and executor
        invalidation are skipped — the mutation is a plain (journaled)
        database insert.
        """
        store = store if store is not None else self.store
        if store is not None:
            store.journal_add(self.db, graph, request_key=request_key)
        gid = self.db.add_graph(graph)
        if self._index_built:
            self.pipeline.on_graph_added(gid, graph)
            self.executor.invalidate()
        return gid

    def add_graph_with_id(
        self,
        gid: int,
        graph: Graph,
        store: "IndexStore | None" = None,
        request_key: str | None = None,
    ) -> int:
        """Insert a data graph under a caller-chosen id (journaled first).

        The shard rebalancer uses this to land a migrating graph on its
        destination shard under its *original* id — step one of the
        two-phase move — so queries keep answering with stable graph ids
        throughout a migration.  Raises :class:`ValueError` when ``gid``
        is already present (same contract as the database layer).
        """
        if gid in self.db:
            raise ValueError(f"graph id {gid} already exists")
        store = store if store is not None else self.store
        if store is not None:
            store.journal_add(self.db, graph, gid=gid, request_key=request_key)
        self.db.add_graph_with_id(gid, graph)
        if self._index_built:
            self.pipeline.on_graph_added(gid, graph)
            self.executor.invalidate()
        return gid

    def remove_graph(
        self,
        gid: int,
        store: "IndexStore | None" = None,
        request_key: str | None = None,
    ) -> Graph:
        """Delete a data graph, updating the index if one exists.

        Raises :class:`KeyError` for an unknown ``gid`` before anything
        is journaled or mutated.  With a store the removal is journaled
        durably first, exactly like :meth:`add_graph`.
        """
        store = store if store is not None else self.store
        if store is not None:
            store.journal_remove(self.db, gid, request_key=request_key)
        graph = self.db.remove_graph(gid)
        if self._index_built:
            self.pipeline.on_graph_removed(gid, graph)
            self.executor.invalidate()
        return graph

    def compact_store(self, store: "IndexStore | None" = None) -> dict:
        """Fold the mutation journal into fresh snapshots; returns a summary.

        Protocol, crash-safe at every step: write a fresh index snapshot
        (when a live, non-degraded index exists), then the database
        snapshot — both atomic (temp + fsync + rename) — and only then
        truncate the journal through the folded sequence number.  A crash
        between any two steps leaves already-folded records in the
        journal, which the next recovery skips idempotently by sequence
        number; acknowledged mutations are never lost or double-applied.
        """
        store = store if store is not None else self.store
        if store is None:
            raise ConfigurationError(
                "compact_store requires an IndexStore (pass one, or attach "
                "one via build_index(store=...))"
            )
        store.ensure_recovered(self.db)
        upto = store.wal.last_seq
        snapshots: list[str] = []
        index = getattr(self.pipeline, "index", None)
        if (
            index is not None
            and self.pipeline.uses_index
            and self._index_built
            and not self.degraded
        ):
            snapshots.append(str(store.save(index, self.db, wal_seq=upto)))
        snapshots.append(str(store.save_database(self.db, wal_seq=upto)))
        folded = store.wal.truncate_through(upto)
        self.compactions += 1
        return {
            "wal_seq": upto,
            "folded": folded,
            "log_depth": store.wal.depth,
            "snapshots": snapshots,
            "compactions": self.compactions,
        }

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def index_memory_bytes(self) -> int:
        """Retained auxiliary-structure size: the supporting index (0 for
        index-free algorithms) plus the lazily built per-graph bitmap
        profiles the matching kernels memoize on the data graphs."""
        return self.pipeline.index_memory_bytes() + self.db.profile_memory_bytes()

    def executor_stats(self) -> dict | None:
        """The executor's supervision snapshot, ``None`` when it has no
        worker processes.  Surfaced by the service's ``stats`` verb."""
        return self.executor.worker_stats()

    def store_stats(self) -> dict | None:
        """Durable-store counters (journal depth, recovery, compactions);
        ``None`` when no store is attached.  Surfaced by ``stats``."""
        if self.store is None:
            return None
        stats: dict = {
            "directory": str(self.store.directory),
            "wal_depth": self.store.wal.depth,
            "wal_last_seq": self.store.wal.last_seq,
            "compactions": self.compactions,
        }
        if self.wal_recovery is not None:
            stats["recovery"] = dict(self.wal_recovery)
        return stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (worker processes); idempotent."""
        self.executor.close()

    def __enter__(self) -> "SubgraphQueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<SubgraphQueryEngine {self.name!r} over {self.db!r}>"
