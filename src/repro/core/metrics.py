"""Query results and the evaluation metrics of Section IV-A.

A :class:`QueryResult` captures one query's execution against a database:
the answer set A(q), the candidate set C(q), and the per-phase timings.
:class:`QuerySetReport` aggregates a list of results into exactly the
metrics the paper reports:

* *filtering precision* — Equation 1: mean over queries of |A(q)|/|C(q)|;
* *verification time* — Equation 2: the summed per-candidate SI test time;
* *per SI test time* — Equation 3: mean over queries of
  ``T_verification / |C(q)|``;
* filtering/verification/query time averages, candidate counts, memory.

Timed-out queries are accounted the paper's way: their query time is
recorded as the time limit, and they are excluded from precision (their
answer set is unknown).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from statistics import mean

__all__ = [
    "FAILURE_KINDS",
    "QueryFailure",
    "QueryResult",
    "QuerySetReport",
    "aggregate_results",
]

#: The four failure classes the execution layer distinguishes: the paper's
#: OOT and OOM table entries, plus worker death (``crash``) and any other
#: unexpected exception (``error``).
FAILURE_KINDS = ("oot", "oom", "crash", "error")


@dataclass
class QueryFailure:
    """Structured record of why one query produced no (complete) answer.

    ``kind`` is one of :data:`FAILURE_KINDS`; ``stage`` names the pipeline
    stage that failed when known (``filter``/``verify``/``query``);
    ``retries`` counts transparent re-dispatch attempts made before the
    failure was recorded.
    """

    kind: str
    message: str = ""
    stage: str | None = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"failure kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )


@dataclass
class QueryResult:
    """Outcome of one subgraph query against a graph database."""

    algorithm: str
    query_name: str | None = None
    answers: set[int] = field(default_factory=set)
    candidates: set[int] = field(default_factory=set)
    #: Graphs surviving the index stage alone (IvcFV only; None otherwise).
    index_candidates: set[int] | None = None
    filtering_time: float = 0.0
    verification_time: float = 0.0
    #: True when the query hit its time limit before completing.
    timed_out: bool = False
    #: Wall time recorded for the query; on timeout this is the limit.
    query_time: float = 0.0
    #: Peak auxiliary-structure bytes observed (candidate vertex sets).
    auxiliary_memory_bytes: int = 0
    #: Structured failure record (OOT/OOM/crash/error); None on success.
    failure: QueryFailure | None = None
    #: Engine-level context stamped onto the result: always ``degraded``
    #: (bool), plus ``degraded_reason``, ``index_source`` ("store" when
    #: warm-started from a snapshot, "build" when built cold), and
    #: ``store_recovery`` (the SnapshotError reason when an invalid
    #: snapshot forced the rebuild that produced this answer).
    metadata: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether the query ended without a trustworthy answer set."""
        return self.timed_out or self.failure is not None

    @property
    def num_answers(self) -> int:
        return len(self.answers)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def precision(self) -> float | None:
        """|A(q)| / |C(q)|, or ``None`` when undefined (no candidates or
        failed)."""
        if self.failed or not self.candidates:
            return None
        return len(self.answers) / len(self.candidates)

    @property
    def per_si_test_time(self) -> float | None:
        """Verification time per candidate graph (Eq. 3's inner term)."""
        if self.failed or not self.candidates:
            return None
        return self.verification_time / len(self.candidates)


@dataclass(frozen=True)
class QuerySetReport:
    """Aggregated metrics of one algorithm over one query set."""

    algorithm: str
    num_queries: int
    num_timeouts: int
    filtering_precision: float | None
    avg_filtering_time: float
    avg_verification_time: float
    avg_query_time: float
    max_query_time: float
    avg_candidates: float | None
    per_si_test_time: float | None
    max_auxiliary_memory_bytes: int
    #: Non-timeout failures (OOM / worker crash / unexpected error).
    num_failures: int = 0
    #: True when the engine answered via a fallback pipeline because its
    #: configured index failed to build (graceful degradation).
    degraded: bool = False

    @property
    def completed(self) -> int:
        return self.num_queries - self.num_timeouts - self.num_failures

    def failed_fraction(self) -> float:
        if self.num_queries == 0:
            return 0.0
        return (self.num_timeouts + self.num_failures) / self.num_queries

    def to_dict(self) -> dict:
        """Plain-scalar dict for JSONL journaling."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "QuerySetReport":
        return cls(**data)


def aggregate_results(
    results: list[QueryResult], degraded: bool = False
) -> QuerySetReport:
    """Fold per-query results into the paper's query-set metrics."""
    if not results:
        raise ValueError("cannot aggregate an empty result list")
    algorithm = results[0].algorithm
    if any(r.algorithm != algorithm for r in results):
        raise ValueError("results mix algorithms; aggregate one at a time")
    precisions = [r.precision for r in results if r.precision is not None]
    si_times = [r.per_si_test_time for r in results if r.per_si_test_time is not None]
    complete = [r for r in results if not r.failed]
    return QuerySetReport(
        algorithm=algorithm,
        num_queries=len(results),
        num_timeouts=sum(1 for r in results if r.timed_out),
        filtering_precision=mean(precisions) if precisions else None,
        avg_filtering_time=mean(r.filtering_time for r in results),
        avg_verification_time=mean(r.verification_time for r in results),
        avg_query_time=mean(r.query_time for r in results),
        max_query_time=max(r.query_time for r in results),
        avg_candidates=mean(r.num_candidates for r in complete) if complete else None,
        per_si_test_time=mean(si_times) if si_times else None,
        max_auxiliary_memory_bytes=max(r.auxiliary_memory_bytes for r in results),
        num_failures=sum(
            1 for r in results if r.failure is not None and not r.timed_out
        ),
        degraded=degraded,
    )
