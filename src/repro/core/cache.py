"""GraphCache-style query-result caching (Wang et al., EDBT 2016/2017).

The paper's Related Work describes a graph cache system that speeds up
subgraph query processing by exploiting *query-to-query* containment
against recently answered queries:

* if a cached query ``q'`` is a subgraph of the new query ``q``, every
  answer of ``q`` also contains ``q'``, so ``A(q) ⊆ A(q')`` — the cached
  answer set is an **upper bound** that prunes the database;
* if the new query is a subgraph of a cached ``q''``, then every graph
  containing ``q''`` contains ``q``, so ``A(q'') ⊆ A(q)`` — those graphs
  are **definite answers** needing no verification.

:class:`CachingPipeline` wraps any :class:`~repro.core.pipeline.
QueryPipeline`, computes both bounds with a subgraph matcher over the
(small) query graphs, and delegates only the remaining graphs to the
inner pipeline through a restricted database view.  Database updates
invalidate exactly the entries they can affect: an insertion drops only
entries whose query labels the new graph covers (it could not answer any
other cached query), and a removal drops none — cached id sets are
filtered against the live database at lookup time, and removal never
adds answers.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.metrics import QueryResult
from repro.core.pipeline import QueryPipeline
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.matching.base import SubgraphMatcher
from repro.matching.plan import QueryPlan
from repro.matching.vf2 import VF2Matcher
from repro.utils.timing import Deadline, Timer

__all__ = ["CacheStats", "CachingPipeline", "DatabaseView"]


class DatabaseView:
    """A read-only view of a database restricted to a subset of ids.

    Implements the protocol the pipelines consume (``items``, ``ids``,
    ``__getitem__``, ``__contains__``, ``__len__``, ``__iter__``), keeping
    the parent's graph ids stable.
    """

    def __init__(self, parent: GraphDatabase, ids: set[int]) -> None:
        self._parent = parent
        self._ids = [gid for gid in parent.ids() if gid in ids]
        self._id_set = frozenset(self._ids)
        self.name = parent.name

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def __contains__(self, gid: int) -> bool:
        return gid in self._id_set

    def __getitem__(self, gid: int) -> Graph:
        if gid not in self._id_set:
            raise KeyError(f"graph {gid} is not part of this view")
        return self._parent[gid]

    def ids(self) -> list[int]:
        return list(self._ids)

    def items(self) -> Iterator[tuple[int, Graph]]:
        for gid in self._ids:
            yield gid, self._parent[gid]

    def graphs(self) -> list[Graph]:
        return [self._parent[gid] for gid in self._ids]


@dataclass
class CacheStats:
    """Counters describing how much work the cache saved."""

    queries: int = 0
    queries_with_hits: int = 0  # queries helped by >= 1 cache entry
    subgraph_hits: int = 0      # cached q' ⊆ q (upper bound applied)
    supergraph_hits: int = 0    # q ⊆ cached q'' (definite answers)
    graphs_pruned: int = 0      # graphs never handed to the inner pipeline
    invalidations: int = 0

    def hit_rate(self) -> float:
        """Fraction of queries that benefited from the cache."""
        if self.queries == 0:
            return 0.0
        return self.queries_with_hits / self.queries


@dataclass
class _CacheEntry:
    query: Graph
    answers: frozenset[int]
    #: The query's label set, memoized at admission: insertions only need
    #: to invalidate entries whose labels the new graph could satisfy.
    labels: frozenset[int]


class CachingPipeline(QueryPipeline):
    """Wrap a pipeline with a bounded LRU cache of answered queries."""

    def __init__(
        self,
        inner: QueryPipeline,
        capacity: int = 32,
        containment_matcher: SubgraphMatcher | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.inner = inner
        self.capacity = capacity
        self.containment = containment_matcher or VF2Matcher()
        self.name = f"cached-{inner.name}"
        self.uses_index = inner.uses_index
        self.stats = CacheStats()
        self._entries: OrderedDict[int, _CacheEntry] = OrderedDict()
        self._next_key = 0

    # The wrapper must be transparent to engine-level introspection: the
    # store warm-starts whatever ``pipeline.index`` exposes, and
    # ``find_embeddings`` enumerates with ``pipeline.matcher`` — both must
    # see the *inner* pipeline's structures, not the containment matcher.

    @property
    def index(self):
        return getattr(self.inner, "index", None)

    @property
    def matcher(self):
        return getattr(self.inner, "matcher", None)

    # ------------------------------------------------------------------
    # Cache mechanics
    # ------------------------------------------------------------------

    def clear(self) -> None:
        self._entries.clear()

    def _bounds(
        self, query: Graph, db, deadline: Deadline | None
    ) -> tuple[set[int] | None, set[int]]:
        """(upper bound on A(q) or None, definite answers)."""
        upper: set[int] | None = None
        definite: set[int] = set()
        for key, entry in list(self._entries.items()):
            cached = entry.query
            if cached.num_vertices <= query.num_vertices and self.containment.exists(
                cached, query, deadline=deadline
            ):
                # cached ⊆ query  →  A(query) ⊆ A(cached)
                self.stats.subgraph_hits += 1
                self._entries.move_to_end(key)
                hits = {gid for gid in entry.answers if gid in db}
                upper = hits if upper is None else upper & hits
            elif cached.num_vertices >= query.num_vertices and self.containment.exists(
                query, cached, deadline=deadline
            ):
                # query ⊆ cached  →  A(cached) ⊆ A(query)
                self.stats.supergraph_hits += 1
                self._entries.move_to_end(key)
                definite |= {gid for gid in entry.answers if gid in db}
        return upper, definite

    def _admit(self, query: Graph, answers: set[int]) -> None:
        self._entries[self._next_key] = _CacheEntry(
            query, frozenset(answers), frozenset(query.label_set())
        )
        self._next_key += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Pipeline interface
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Graph,
        db,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        self.stats.queries += 1
        hits_before = self.stats.subgraph_hits + self.stats.supergraph_hits
        with Timer() as t_cache:
            upper, definite = self._bounds(query, db, deadline)
        cache_hit = (
            self.stats.subgraph_hits + self.stats.supergraph_hits > hits_before
        )
        if cache_hit:
            self.stats.queries_with_hits += 1
        universe = set(db.ids())
        candidates = universe if upper is None else upper
        remaining = candidates - definite
        self.stats.graphs_pruned += len(universe) - len(remaining)

        inner_result = self.inner.execute(
            query, DatabaseView(db, remaining), deadline=deadline, plan=plan
        )
        result = QueryResult(
            algorithm=self.name,
            query_name=query.name,
            answers=definite | inner_result.answers,
            candidates=definite | inner_result.candidates,
            index_candidates=inner_result.index_candidates,
            filtering_time=t_cache.elapsed + inner_result.filtering_time,
            verification_time=inner_result.verification_time,
            timed_out=inner_result.timed_out,
            query_time=t_cache.elapsed + inner_result.query_time,
            auxiliary_memory_bytes=inner_result.auxiliary_memory_bytes,
        )
        # Per-query cache outcome, readable off the result alone (the
        # pipeline object may live in another process under a pool
        # executor, so aggregate ``stats`` are not always reachable).
        result.metadata["cache_hit"] = cache_hit
        result.metadata["cache_pruned"] = len(universe) - len(remaining)
        result.metadata["cache_definite"] = len(definite)
        if not result.timed_out:
            self._admit(query, result.answers)
        return result

    # Index hooks: delegate, and invalidate exactly the stale entries. ----

    def build_index(self, db, deadline: Deadline | None = None) -> None:
        self.inner.build_index(db, deadline=deadline)

    def on_graph_added(self, graph_id: int, graph: Graph) -> None:
        """Drop only the entries the new graph could have joined.

        A cached answer set goes stale on insertion only if the new graph
        might answer the cached query, which requires the query's labels
        to be a subset of the graph's.  Entries over disjoint labels stay
        exact: the new graph cannot contain their query, so its exclusion
        from the cached (upper-bound) answer set is correct.
        """
        self.inner.on_graph_added(graph_id, graph)
        graph_labels = graph.label_set()
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.labels <= graph_labels
        ]
        for key in stale:
            del self._entries[key]
        if stale:
            self.stats.invalidations += 1

    def on_graph_removed(self, graph_id: int, graph: Graph | None = None) -> None:
        """Removal needs no cache invalidation at all.

        Cached answer sets are used as id sets filtered against the live
        database at lookup time (``gid in db`` in ``_bounds``), so a
        removed graph simply drops out of every bound; removal never
        *adds* answers, so the surviving ids stay exact.
        """
        self.inner.on_graph_removed(graph_id, graph)

    def index_memory_bytes(self) -> int:
        return self.inner.index_memory_bytes()
