"""Factory for the competing algorithms of the study (Table III).

Eight named configurations from the paper, plus two direct-enumeration
baselines:

========== ========= ============================ =========================
Name       Category  Filtering                    Verification
========== ========= ============================ =========================
CT-Index   IFV       tree/cycle fingerprints      modified VF2 (degree order)
Grapes     IFV       path-count trie              VF2
GGSX       IFV       suffix-trie paths            VF2
CFL        vcFV      CFL preprocessing            CFL enumeration
GraphQL    vcFV      GraphQL preprocessing        GraphQL enumeration
CFQL       vcFV      CFL preprocessing            GraphQL enumeration
vcGrapes   IvcFV     trie + CFL preprocessing     GraphQL enumeration
vcGGSX     IvcFV     suffix trie + CFL preproc.   GraphQL enumeration
VF2-FV     baseline  none                         VF2
Ullmann-FV baseline  none                         Ullmann
========== ========= ============================ =========================

``create_engine(db, "CFQL")`` is the one-line entry point; keyword
overrides reach the underlying index/matcher constructors (e.g.
``max_path_edges=3`` to shrink Grapes' path length).
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.core.engine import SubgraphQueryEngine
from repro.core.pipeline import (
    IFVPipeline,
    IvcFVPipeline,
    NaiveFVPipeline,
    QueryPipeline,
    VcFVPipeline,
)
from repro.graph.database import GraphDatabase
from repro.index.ct_index import CTIndex
from repro.index.ggsx import GGSXIndex
from repro.index.graphgrep import GraphGrepIndex
from repro.index.grapes import GrapesIndex
from repro.index.mining import MiningTreeIndex
from repro.index.sing import SINGIndex
from repro.matching.cfl import CFLMatcher
from repro.matching.cfql import CFQLMatcher
from repro.matching.graphql import GraphQLMatcher
from repro.matching.quicksi import QuickSIMatcher
from repro.matching.spath import SPathMatcher
from repro.matching.turboiso import TurboIsoMatcher
from repro.matching.ullmann import UllmannMatcher
from repro.matching.vf2 import VF2Matcher
from repro.utils.errors import ConfigurationError

__all__ = [
    "ALGORITHM_CATEGORIES",
    "ALGORITHM_NAMES",
    "create_engine",
    "create_pipeline",
]


def _split_kwargs(kwargs: dict, prefix: str, cls: type) -> dict:
    """Extract ``prefix_*`` overrides accepted by ``cls.__init__``.

    Overrides the target class does not accept are silently ignored, so a
    caller can pass one override set (e.g. ``index_max_path_edges=3``) to a
    heterogeneous collection of algorithms.
    """
    plen = len(prefix) + 1
    accepted = inspect.signature(cls.__init__).parameters
    return {
        k[plen:]: v
        for k, v in kwargs.items()
        if k.startswith(prefix + "_") and k[plen:] in accepted
    }


def _index_kwargs(kwargs: dict, cls: type) -> dict:
    return _split_kwargs(kwargs, "index", cls)


def _build_ct_index(**kwargs) -> QueryPipeline:
    return IFVPipeline(
        CTIndex(**_index_kwargs(kwargs, CTIndex)),
        VF2Matcher(order_heuristic="degree"),
    )


def _build_grapes(**kwargs) -> QueryPipeline:
    return IFVPipeline(GrapesIndex(**_index_kwargs(kwargs, GrapesIndex)), VF2Matcher())


def _build_ggsx(**kwargs) -> QueryPipeline:
    return IFVPipeline(GGSXIndex(**_index_kwargs(kwargs, GGSXIndex)), VF2Matcher())


def _build_graphgrep(**kwargs) -> QueryPipeline:
    return IFVPipeline(
        GraphGrepIndex(**_index_kwargs(kwargs, GraphGrepIndex)), VF2Matcher()
    )


def _build_treepi(**kwargs) -> QueryPipeline:
    return IFVPipeline(
        MiningTreeIndex(**_index_kwargs(kwargs, MiningTreeIndex)), VF2Matcher()
    )


def _build_sing(**kwargs) -> QueryPipeline:
    return IFVPipeline(SINGIndex(**_index_kwargs(kwargs, SINGIndex)), VF2Matcher())


def _build_cfl(**kwargs) -> QueryPipeline:
    return VcFVPipeline(CFLMatcher())


def _build_graphql(**kwargs) -> QueryPipeline:
    return VcFVPipeline(GraphQLMatcher(**_split_kwargs(kwargs, "matcher", GraphQLMatcher)))


def _build_cfql(**kwargs) -> QueryPipeline:
    return VcFVPipeline(CFQLMatcher())


def _build_vc_grapes(**kwargs) -> QueryPipeline:
    return IvcFVPipeline(GrapesIndex(**_index_kwargs(kwargs, GrapesIndex)), CFQLMatcher())


def _build_vc_ggsx(**kwargs) -> QueryPipeline:
    return IvcFVPipeline(GGSXIndex(**_index_kwargs(kwargs, GGSXIndex)), CFQLMatcher())


def _build_turboiso(**kwargs) -> QueryPipeline:
    return VcFVPipeline(TurboIsoMatcher())


def _build_vf2_fv(**kwargs) -> QueryPipeline:
    return NaiveFVPipeline(VF2Matcher())


def _build_ullmann_fv(**kwargs) -> QueryPipeline:
    return NaiveFVPipeline(UllmannMatcher())


def _build_quicksi_fv(**kwargs) -> QueryPipeline:
    return NaiveFVPipeline(QuickSIMatcher())


def _build_spath_fv(**kwargs) -> QueryPipeline:
    return NaiveFVPipeline(SPathMatcher(**_split_kwargs(kwargs, "matcher", SPathMatcher)))


_BUILDERS: dict[str, Callable[..., QueryPipeline]] = {
    "CT-Index": _build_ct_index,
    "Grapes": _build_grapes,
    "GGSX": _build_ggsx,
    "CFL": _build_cfl,
    "GraphQL": _build_graphql,
    "CFQL": _build_cfql,
    "vcGrapes": _build_vc_grapes,
    "vcGGSX": _build_vc_ggsx,
    "GraphGrep": _build_graphgrep,
    "TreePi": _build_treepi,
    "SING": _build_sing,
    "TurboIso": _build_turboiso,
    "VF2-FV": _build_vf2_fv,
    "Ullmann-FV": _build_ullmann_fv,
    "QuickSI-FV": _build_quicksi_fv,
    "SPath-FV": _build_spath_fv,
}

#: All algorithm names accepted by :func:`create_engine`.
ALGORITHM_NAMES: tuple[str, ...] = tuple(_BUILDERS)

#: Category of each algorithm, as in Table III.
ALGORITHM_CATEGORIES: dict[str, str] = {
    "CT-Index": "IFV",
    "Grapes": "IFV",
    "GGSX": "IFV",
    "CFL": "vcFV",
    "GraphQL": "vcFV",
    "CFQL": "vcFV",
    "vcGrapes": "IvcFV",
    "vcGGSX": "IvcFV",
    "GraphGrep": "IFV",
    "TreePi": "IFV",
    "SING": "IFV",
    "TurboIso": "vcFV",
    "VF2-FV": "baseline",
    "Ullmann-FV": "baseline",
    "QuickSI-FV": "baseline",
    "SPath-FV": "baseline",
}


def create_pipeline(name: str, **overrides) -> QueryPipeline:
    """Instantiate one of the named pipelines.

    Overrides use a ``index_``/``matcher_`` prefix convention, e.g.
    ``create_pipeline("Grapes", index_max_path_edges=3)``.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(ALGORITHM_NAMES)
        raise ConfigurationError(f"unknown algorithm {name!r}; expected one of {known}") from None
    return builder(**overrides)


def create_engine(
    db: GraphDatabase,
    name: str,
    executor=None,
    cache: int = 0,
    plan_cache: int = 256,
    **overrides,
) -> SubgraphQueryEngine:
    """Create a query engine running algorithm ``name`` over ``db``.

    ``executor`` selects the containment policy (a
    :class:`~repro.exec.base.QueryExecutor`); the default is cooperative
    in-process execution.  ``cache`` > 0 wraps the pipeline in a
    :class:`~repro.core.cache.CachingPipeline` with that LRU capacity.
    ``plan_cache`` is the capacity of the compiled-query-plan LRU
    (0 disables it).
    """
    return SubgraphQueryEngine(
        db,
        create_pipeline(name, **overrides),
        executor=executor,
        cache=cache,
        plan_cache=plan_cache,
    )
