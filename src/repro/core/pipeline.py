"""The three query-processing pipelines of the study (Table III).

* :class:`IFVPipeline` — Algorithm 1: index-based filtering + subgraph
  isomorphism tests (classically VF2) on the candidates.
* :class:`VcFVPipeline` — Algorithm 2: per data graph, build the complete
  candidate vertex sets of a preprocessing-enumeration matcher (the
  *vertex-connectivity* filter); graphs with all Φ(u) non-empty form C(q)
  and are verified by first-match enumeration.
* :class:`IvcFVPipeline` — both: index filtering first, then the vertex-
  connectivity filter and the same verification.
* :class:`NaiveFVPipeline` — the strawman from Section III-B: no filtering,
  run a first-match matcher against every data graph.

Time accounting follows Section IV-A: for vcFV/IvcFV, extracting candidate
vertex sets counts as *filtering* time; ordering plus enumeration count as
*verification* time.  A query-level deadline turns expiry into a
``timed_out`` result rather than an exception.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.core.metrics import QueryFailure, QueryResult
from repro.exec import faults
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.index.base import GraphIndex
from repro.matching.base import PreprocessingMatcher, SubgraphMatcher
from repro.matching.enumeration import enumerate_embeddings
from repro.matching.plan import QueryPlan, compile_plan
from repro.utils.errors import (
    ConfigurationError,
    MemoryLimitExceeded,
    TimeLimitExceeded,
)
from repro.utils.timing import Deadline, Timer

__all__ = [
    "IFVPipeline",
    "IvcFVPipeline",
    "NaiveFVPipeline",
    "QueryPipeline",
    "VcFVPipeline",
    "fallback_pipeline",
]


class QueryPipeline(ABC):
    """One way of answering a subgraph query against a whole database."""

    #: Algorithm name reported in results (set by the engine factory).
    name: str = "pipeline"

    #: Whether the pipeline maintains an index over the database.
    uses_index: bool = False

    @abstractmethod
    def execute(
        self,
        query: Graph,
        db: GraphDatabase,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        """Run the query; never raises on deadline expiry (flags instead).

        ``plan`` is an optional pre-compiled :class:`QueryPlan` for
        ``query`` (from the engine's plan cache); pipelines compile their
        own when none is given, so the per-query work is done once rather
        than once per data graph either way.
        """

    # Index maintenance hooks (no-ops for index-free pipelines). ----------

    def build_index(self, db: GraphDatabase, deadline: Deadline | None = None) -> None:
        """Construct the supporting index, if any."""

    def on_graph_added(self, graph_id: int, graph: Graph) -> None:
        """Keep the index consistent after a database insertion."""

    def on_graph_removed(self, graph_id: int, graph: Graph | None = None) -> None:
        """Keep the index consistent after a database deletion.

        ``graph`` is the removed graph when the caller still holds it —
        wrappers (e.g. the result cache) can use its label set to scope
        their invalidation instead of flushing everything.
        """

    def index_memory_bytes(self) -> int:
        """Retained index size (0 for index-free pipelines)."""
        return 0


def _run_with_time_limit(result: QueryResult, deadline: Deadline | None, body) -> QueryResult:
    """Execute ``body()``, converting failures into flags on the result.

    Deadline expiry, memory-budget violations and unexpected exceptions
    are all *recorded* rather than raised, so one pathological query can
    never abort the rest of a query set.  On timeout the paper records the
    query's time as the full limit, so the partially filled ``result``
    gets ``query_time`` overwritten accordingly.
    """
    started = time.perf_counter()
    try:
        faults.trip("query:start", tag=result.query_name or "")
        body()
    except TimeLimitExceeded as exc:
        result.timed_out = True
        result.failure = QueryFailure(
            kind="oot", message=str(exc) or "deadline expired", stage="query"
        )
    except (MemoryLimitExceeded, MemoryError) as exc:
        result.failure = QueryFailure(
            kind="oom", message=str(exc) or "memory limit exceeded", stage="query"
        )
    except Exception as exc:
        result.failure = QueryFailure(
            kind="error", message=f"{type(exc).__name__}: {exc}", stage="query"
        )
    result.query_time = time.perf_counter() - started
    return result


class VcFVPipeline(QueryPipeline):
    """Algorithm 2: vertex-connectivity filtering-verification."""

    def __init__(self, matcher: PreprocessingMatcher) -> None:
        self.matcher = matcher
        self.name = matcher.name

    def execute(
        self,
        query: Graph,
        db: GraphDatabase,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        result = QueryResult(algorithm=self.name, query_name=query.name)
        if plan is None:
            plan = compile_plan(query)

        def body() -> None:
            for gid, graph in db.items():
                self.process_graph(query, gid, graph, result, deadline, plan=plan)

        return _run_with_time_limit(result, deadline, body)

    def process_graph(
        self,
        query: Graph,
        gid: int,
        graph: Graph,
        result: QueryResult,
        deadline: Deadline | None,
        plan: QueryPlan | None = None,
    ) -> None:
        faults.trip("filter", tag=f"{self.name}:{query.name or ''}")
        with Timer() as t_filter:
            candidates = self.matcher.build_candidates(
                query, graph, deadline=deadline, plan=plan
            )
        result.filtering_time += t_filter.elapsed
        if candidates is None or not candidates.all_nonempty:
            return
        result.candidates.add(gid)
        result.auxiliary_memory_bytes = max(
            result.auxiliary_memory_bytes, candidates.memory_bytes()
        )
        faults.trip("verify", tag=f"{self.name}:{query.name or ''}")
        with Timer() as t_verify:
            order = self.matcher.matching_order(query, graph, candidates, plan=plan)
            found = enumerate_embeddings(
                query, graph, candidates, order, limit=1, deadline=deadline, plan=plan
            ).found
        result.verification_time += t_verify.elapsed
        if found:
            result.answers.add(gid)


class IFVPipeline(QueryPipeline):
    """Algorithm 1: index filtering + subgraph isomorphism verification."""

    uses_index = True

    def __init__(self, index: GraphIndex, verifier: SubgraphMatcher) -> None:
        self.index = index
        self.verifier = verifier
        self.name = index.name

    def build_index(self, db: GraphDatabase, deadline: Deadline | None = None) -> None:
        self.index.build(db, deadline=deadline)

    def on_graph_added(self, graph_id: int, graph: Graph) -> None:
        self.index.add_graph(graph_id, graph)

    def on_graph_removed(self, graph_id: int, graph: Graph | None = None) -> None:
        self.index.remove_graph(graph_id)

    def index_memory_bytes(self) -> int:
        return self.index.memory_bytes()

    def execute(
        self,
        query: Graph,
        db: GraphDatabase,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        result = QueryResult(algorithm=self.name, query_name=query.name)
        if plan is None:
            plan = compile_plan(query)

        def body() -> None:
            faults.trip("filter", tag=f"{self.name}:{query.name or ''}")
            with Timer() as t_filter:
                candidate_ids = self.index.candidates(query, deadline=deadline)
            result.filtering_time = t_filter.elapsed
            # The index may cover more graphs than the database view being
            # queried (e.g. under a cache-restricted view); only graphs
            # actually present count as candidates.
            candidate_ids = {gid for gid in candidate_ids if gid in db}
            result.candidates = set(candidate_ids)
            if candidate_ids:
                faults.trip("verify", tag=f"{self.name}:{query.name or ''}")
            for gid in sorted(candidate_ids):
                with Timer() as t_verify:
                    found = self.verifier.exists(
                        query, db[gid], deadline=deadline, plan=plan
                    )
                result.verification_time += t_verify.elapsed
                if found:
                    result.answers.add(gid)

        return _run_with_time_limit(result, deadline, body)


class IvcFVPipeline(QueryPipeline):
    """Index filtering, then vertex-connectivity filtering, then
    first-match verification (vcGrapes / vcGGSX)."""

    uses_index = True

    def __init__(self, index: GraphIndex, matcher: PreprocessingMatcher) -> None:
        self.index = index
        self.matcher = matcher
        self.name = f"vc{index.name}"
        self._vc = VcFVPipeline(matcher)

    def build_index(self, db: GraphDatabase, deadline: Deadline | None = None) -> None:
        self.index.build(db, deadline=deadline)

    def on_graph_added(self, graph_id: int, graph: Graph) -> None:
        self.index.add_graph(graph_id, graph)

    def on_graph_removed(self, graph_id: int, graph: Graph | None = None) -> None:
        self.index.remove_graph(graph_id)

    def index_memory_bytes(self) -> int:
        return self.index.memory_bytes()

    def execute(
        self,
        query: Graph,
        db: GraphDatabase,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        result = QueryResult(algorithm=self.name, query_name=query.name)
        if plan is None:
            plan = compile_plan(query)

        def body() -> None:
            faults.trip("filter", tag=f"{self.name}:{query.name or ''}")
            with Timer() as t_index:
                index_survivors = self.index.candidates(query, deadline=deadline)
            result.filtering_time = t_index.elapsed
            index_survivors = {gid for gid in index_survivors if gid in db}
            result.index_candidates = set(index_survivors)
            for gid in sorted(index_survivors):
                self._vc.process_graph(query, gid, db[gid], result, deadline, plan=plan)

        return _run_with_time_limit(result, deadline, body)


class NaiveFVPipeline(QueryPipeline):
    """No filtering: one first-match run of the matcher per data graph.

    This is the "naive method" of Section III-B, kept as a baseline; every
    data graph counts as a candidate.
    """

    def __init__(self, matcher: SubgraphMatcher) -> None:
        self.matcher = matcher
        self.name = f"{matcher.name}-FV"

    def execute(
        self,
        query: Graph,
        db: GraphDatabase,
        deadline: Deadline | None = None,
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        result = QueryResult(algorithm=self.name, query_name=query.name)
        if plan is None:
            plan = compile_plan(query)

        def body() -> None:
            faults.trip("verify", tag=f"{self.name}:{query.name or ''}")
            result.candidates = set(db.ids())
            for gid, graph in db.items():
                with Timer() as t_verify:
                    found = self.matcher.exists(
                        query, graph, deadline=deadline, plan=plan
                    )
                result.verification_time += t_verify.elapsed
                if found:
                    result.answers.add(gid)

        return _run_with_time_limit(result, deadline, body)


def fallback_pipeline(pipeline: QueryPipeline) -> QueryPipeline:
    """The index-free pipeline an index-based one degrades to.

    When index construction runs out of time or memory the configuration
    need not be abandoned: an IvcFV pipeline minus its index is exactly
    the vcFV pipeline of its matcher, and a plain IFV pipeline degrades to
    the paper's vcFV representative (CFQL, Section IV), which answers the
    same containment queries without any index.  The fallback keeps the
    original algorithm name so reports stay attributed to the configured
    algorithm (flagged as degraded by the caller).
    """
    from repro.core.cache import CachingPipeline

    if isinstance(pipeline, CachingPipeline):
        # Degrade the wrapped pipeline but keep caching (a fresh cache:
        # the old entries were answered by the indexed configuration).
        return CachingPipeline(
            fallback_pipeline(pipeline.inner),
            capacity=pipeline.capacity,
            containment_matcher=pipeline.containment,
        )
    if isinstance(pipeline, IvcFVPipeline):
        fallback: QueryPipeline = VcFVPipeline(pipeline.matcher)
    elif isinstance(pipeline, IFVPipeline):
        from repro.matching.cfql import CFQLMatcher

        fallback = VcFVPipeline(CFQLMatcher())
    else:
        raise ConfigurationError(
            f"pipeline {pipeline.name!r} has no index to degrade from"
        )
    fallback.name = pipeline.name
    return fallback
