"""The paper's core contribution: IFV / vcFV / IvcFV query processing."""

from repro.core.algorithms import (
    ALGORITHM_CATEGORIES,
    ALGORITHM_NAMES,
    create_engine,
    create_pipeline,
)
from repro.core.cache import CacheStats, CachingPipeline, DatabaseView
from repro.core.engine import SubgraphQueryEngine
from repro.core.metrics import (
    QueryFailure,
    QueryResult,
    QuerySetReport,
    aggregate_results,
)
from repro.core.pipeline import (
    IFVPipeline,
    IvcFVPipeline,
    NaiveFVPipeline,
    QueryPipeline,
    VcFVPipeline,
    fallback_pipeline,
)

__all__ = [
    "ALGORITHM_CATEGORIES",
    "ALGORITHM_NAMES",
    "CacheStats",
    "CachingPipeline",
    "DatabaseView",
    "IFVPipeline",
    "IvcFVPipeline",
    "NaiveFVPipeline",
    "QueryFailure",
    "QueryPipeline",
    "QueryResult",
    "QuerySetReport",
    "SubgraphQueryEngine",
    "VcFVPipeline",
    "aggregate_results",
    "create_engine",
    "create_pipeline",
    "fallback_pipeline",
]
