"""Synthetic parameter sweeps (Section IV-C).

The paper generates GraphGen databases around a "sane defaults" base point
(|D| = 1000, |Σ| = 20, |V(G)| = 200, d(G) = 8) and varies one parameter at
a time.  We keep the same base shape, scaled to Python speed (see
DESIGN.md): |D| = 100, |Σ| = 20, |V(G)| = 50, d(G) = 8, with sweep values
that preserve each axis's dynamic range ordering.

:func:`synthetic_sweep` produces ``{value: GraphDatabase}`` for one axis;
:data:`SWEEP_VALUES` lists the default grid for each axis next to the
paper's original values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.graph.database import GraphDatabase
from repro.graph.generators import generate_database
from repro.utils.rng import SeedLike, make_rng

__all__ = [
    "BASE_CONFIG",
    "PAPER_SWEEP_VALUES",
    "SWEEP_VALUES",
    "SyntheticConfig",
    "synthetic_sweep",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """One GraphGen-style parameter point."""

    num_graphs: int = 100
    num_vertices: int = 50
    num_labels: int = 20
    avg_degree: float = 8.0

    def instantiate(self, seed: SeedLike = 0, name: str | None = None) -> GraphDatabase:
        return generate_database(
            self.num_graphs,
            self.num_vertices,
            self.avg_degree,
            self.num_labels,
            seed=seed,
            name=name,
        )


#: The scaled-down analogue of the paper's default synthetic dataset.
BASE_CONFIG = SyntheticConfig()

#: Sweep axes: parameter name → dataclass field + default value grid.
SWEEP_VALUES: dict[str, tuple[int, ...]] = {
    "num_graphs": (25, 50, 100, 200, 400),
    "num_labels": (1, 10, 20, 40, 80),
    "num_vertices": (25, 50, 100, 200, 400),
    "avg_degree": (4, 8, 12, 16, 24),
}

#: The paper's original sweep values, for side-by-side reporting.
PAPER_SWEEP_VALUES: dict[str, tuple[int, ...]] = {
    "num_graphs": (10**2, 10**3, 10**4, 10**5, 10**6),
    "num_labels": (1, 10, 20, 40, 80),
    "num_vertices": (50, 200, 800, 3200, 12800),
    "avg_degree": (4, 8, 16, 32, 64),
}


def synthetic_sweep(
    parameter: str,
    values: tuple[int, ...] | None = None,
    base: SyntheticConfig = BASE_CONFIG,
    seed: SeedLike = 0,
) -> dict[int, GraphDatabase]:
    """Databases for one sweep axis, all other parameters at ``base``.

    ``parameter`` is one of ``num_graphs``, ``num_labels``,
    ``num_vertices``, ``avg_degree``.
    """
    if parameter not in SWEEP_VALUES:
        known = ", ".join(SWEEP_VALUES)
        raise ValueError(f"unknown sweep parameter {parameter!r}; expected one of {known}")
    if values is None:
        values = SWEEP_VALUES[parameter]
    rng = make_rng(seed)
    sweep: dict[int, GraphDatabase] = {}
    for value in values:
        config = replace(base, **{parameter: value})
        sweep[value] = config.instantiate(
            seed=rng.getrandbits(64), name=f"synthetic-{parameter}-{value}"
        )
    return sweep
