"""Query sets in the paper's Q_iS / Q_iD scheme (Section IV-A).

For a dataset, the paper generates 8 query sets: random-walk queries
(sparse, ``Q_iS``) and BFS queries (dense, ``Q_iD``) with i ∈ {4, 8, 16,
32} edges, 100 queries each.  :func:`standard_query_sets` reproduces that
layout (with a configurable per-set size), and
:func:`query_set_statistics` computes the Table V rows: average vertex
count, label diversity and degree per query, and the fraction of tree-
shaped queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.graph.algorithms import is_tree
from repro.graph.database import GraphDatabase
from repro.graph.generators import bfs_query, random_walk_query
from repro.graph.labeled_graph import Graph
from repro.utils.rng import SeedLike, make_rng

__all__ = [
    "QuerySet",
    "generate_query_set",
    "query_set_statistics",
    "standard_query_sets",
]

DEFAULT_EDGE_COUNTS = (4, 8, 16, 32)


@dataclass(frozen=True)
class QuerySet:
    """A named list of query graphs with a fixed edge count."""

    name: str
    queries: tuple[Graph, ...]
    num_edges: int
    dense: bool

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def generate_query_set(
    db: GraphDatabase,
    num_edges: int,
    dense: bool,
    size: int = 100,
    seed: SeedLike = None,
    name: str | None = None,
) -> QuerySet:
    """Sample ``size`` queries with ``num_edges`` edges from ``db``.

    Each query is extracted from a uniformly chosen data graph — random
    walk when ``dense`` is false (``Q_iS``), BFS otherwise (``Q_iD``) — so
    every query has at least one answer in ``db``.  Raises ``ValueError``
    when the database cannot yield enough queries (e.g. all graphs smaller
    than the requested edge count).
    """
    rng = make_rng(seed)
    ids = db.ids()
    if not ids:
        raise ValueError("cannot sample queries from an empty database")
    generator = bfs_query if dense else random_walk_query
    if name is None:
        name = f"Q{num_edges}{'D' if dense else 'S'}"
    queries: list[Graph] = []
    attempts = 0
    max_attempts = max(size * 50, 500)
    while len(queries) < size and attempts < max_attempts:
        attempts += 1
        source = db[ids[rng.randrange(len(ids))]]
        query = generator(
            source,
            num_edges,
            seed=rng.getrandbits(64),
            name=f"{name}-{len(queries)}",
        )
        if query is not None:
            queries.append(query)
    if len(queries) < size:
        raise ValueError(
            f"could not sample {size} queries with {num_edges} edges "
            f"from {db.name or 'database'} ({len(queries)} found)"
        )
    return QuerySet(name=name, queries=tuple(queries), num_edges=num_edges, dense=dense)


def standard_query_sets(
    db: GraphDatabase,
    edge_counts: tuple[int, ...] = DEFAULT_EDGE_COUNTS,
    size: int = 100,
    seed: SeedLike = 0,
) -> dict[str, QuerySet]:
    """The paper's 8 query sets: Q_iS and Q_iD for each edge count."""
    rng = make_rng(seed)
    sets: dict[str, QuerySet] = {}
    for dense in (False, True):
        for num_edges in edge_counts:
            qs = generate_query_set(
                db, num_edges, dense, size=size, seed=rng.getrandbits(64)
            )
            sets[qs.name] = qs
    return sets


def query_set_statistics(query_set: QuerySet) -> dict[str, float]:
    """The Table V row for one query set."""
    queries = query_set.queries
    return {
        "|V| per q": round(mean(q.num_vertices for q in queries), 2),
        "|Σ| per q": round(mean(q.num_labels for q in queries), 2),
        "d per q": round(mean(q.average_degree for q in queries), 2),
        "% of trees": round(mean(1.0 if is_tree(q) else 0.0 for q in queries), 2),
    }
