"""Workloads: real-dataset stand-ins, query sets, synthetic sweeps."""

from repro.workloads.datasets import (
    REAL_WORLD_SPECS,
    DatasetSpec,
    make_aids_like,
    make_dataset,
    make_pcm_like,
    make_pdbs_like,
    make_ppi_like,
)
from repro.workloads.querysets import (
    QuerySet,
    generate_query_set,
    query_set_statistics,
    standard_query_sets,
)
from repro.workloads.synthetic import (
    BASE_CONFIG,
    PAPER_SWEEP_VALUES,
    SWEEP_VALUES,
    SyntheticConfig,
    synthetic_sweep,
)

__all__ = [
    "BASE_CONFIG",
    "DatasetSpec",
    "PAPER_SWEEP_VALUES",
    "QuerySet",
    "REAL_WORLD_SPECS",
    "SWEEP_VALUES",
    "SyntheticConfig",
    "generate_query_set",
    "make_aids_like",
    "make_dataset",
    "make_pcm_like",
    "make_pdbs_like",
    "make_ppi_like",
    "query_set_statistics",
    "standard_query_sets",
    "synthetic_sweep",
]
