"""Synthetic stand-ins for the paper's real-world datasets (Table IV).

The paper evaluates on four privately obtained biological datasets.  We
cannot ship those, so each gets a seeded synthetic stand-in whose *shape*
matches Table IV — the property the evaluation conclusions actually depend
on (see DESIGN.md, "Substitutions"):

=========  ==============  =====================  ======  =========
Dataset    Structure class  Paper (graphs × |V|)  degree  Σ (skew)
=========  ==============  =====================  ======  =========
AIDS-like  many small sparse molecules  40,000 × 45    2.09   62, heavy
PDBS-like  few large sparse macromolecules  600 × 2,939  2.06  10, heavy
PCM-like   few medium dense interaction maps  200 × 377  23.0  21, mild
PPI-like   very few, largest, dense networks  20 × 4,942  10.9  46, mild
=========  ==============  =====================  ======  =========

Sizes are scaled down (~4-10×) so pure Python completes the full
experiment suite; the orderings between datasets — graph count, graph
size, density, label diversity — are preserved.  ``scale`` scales graph
counts and vertex counts together for cheaper test/bench runs.

Label skew follows a Zipf-like law ``w_r ∝ 1/r^s``; heavier ``s`` yields
the low per-graph label diversity of molecule data (AIDS averages 4.4
distinct labels per 45-vertex graph against a 62-label alphabet).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.database import GraphDatabase
from repro.graph.generators import generate_database
from repro.utils.rng import SeedLike

__all__ = [
    "DatasetSpec",
    "REAL_WORLD_SPECS",
    "make_aids_like",
    "make_dataset",
    "make_pcm_like",
    "make_pdbs_like",
    "make_ppi_like",
]


def zipf_weights(num_labels: int, skew: float) -> list[float]:
    """Zipf-like label weights ``1/rank^skew`` (rank starts at 1)."""
    return [1.0 / (rank**skew) for rank in range(1, num_labels + 1)]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one stand-in dataset."""

    name: str
    num_graphs: int
    num_vertices: int
    avg_degree: float
    num_labels: int
    label_skew: float
    #: Degree distribution: "uniform" for molecule-like data, or
    #: "preferential" for the hub-dominated interaction networks.
    attachment: str
    #: The paper's Table IV row, for side-by-side reporting.
    paper_row: dict[str, float]

    def instantiate(self, seed: SeedLike = 0, scale: float = 1.0) -> GraphDatabase:
        # ``scale`` shrinks the *graph count* only: per-graph size, degree
        # and label distribution are the dataset's identity — a scaled
        # AIDS-like must still consist of 45-vertex molecules, or the
        # paper's query sets (up to 32 edges) stop being samplable.
        num_graphs = max(2, round(self.num_graphs * scale))
        return generate_database(
            num_graphs,
            self.num_vertices,
            self.avg_degree,
            self.num_labels,
            seed=seed,
            name=self.name,
            label_weights=zipf_weights(self.num_labels, self.label_skew),
            attachment=self.attachment,
        )


REAL_WORLD_SPECS: dict[str, DatasetSpec] = {
    "AIDS": DatasetSpec(
        name="AIDS",
        num_graphs=800,
        num_vertices=45,
        avg_degree=2.1,
        num_labels=62,
        label_skew=2.4,
        attachment="uniform",
        paper_row={
            "#graphs": 40000, "#labels": 62, "#vertices per graph": 45,
            "#edges per graph": 46.95, "degree per graph": 2.09,
            "#labels per graph": 4.4,
        },
    ),
    "PDBS": DatasetSpec(
        name="PDBS",
        num_graphs=60,
        num_vertices=300,
        avg_degree=2.1,
        num_labels=10,
        label_skew=1.6,
        attachment="uniform",
        paper_row={
            "#graphs": 600, "#labels": 10, "#vertices per graph": 2939,
            "#edges per graph": 3064, "degree per graph": 2.06,
            "#labels per graph": 6.4,
        },
    ),
    "PCM": DatasetSpec(
        name="PCM",
        num_graphs=40,
        num_vertices=120,
        avg_degree=12.0,
        num_labels=21,
        label_skew=0.4,
        attachment="preferential",
        paper_row={
            "#graphs": 200, "#labels": 21, "#vertices per graph": 377,
            "#edges per graph": 4340, "degree per graph": 23.01,
            "#labels per graph": 18.9,
        },
    ),
    "PPI": DatasetSpec(
        name="PPI",
        num_graphs=8,
        num_vertices=400,
        avg_degree=9.0,
        num_labels=46,
        label_skew=0.5,
        attachment="preferential",
        paper_row={
            "#graphs": 20, "#labels": 46, "#vertices per graph": 4942,
            "#edges per graph": 26667, "degree per graph": 10.87,
            "#labels per graph": 28.5,
        },
    ),
}


def make_dataset(name: str, seed: SeedLike = 0, scale: float = 1.0) -> GraphDatabase:
    """Instantiate the stand-in for one of AIDS / PDBS / PCM / PPI."""
    try:
        spec = REAL_WORLD_SPECS[name]
    except KeyError:
        known = ", ".join(REAL_WORLD_SPECS)
        raise ValueError(f"unknown dataset {name!r}; expected one of {known}") from None
    return spec.instantiate(seed=seed, scale=scale)


def make_aids_like(seed: SeedLike = 0, scale: float = 1.0) -> GraphDatabase:
    """Many small sparse molecule-like graphs (AIDS stand-in)."""
    return make_dataset("AIDS", seed=seed, scale=scale)


def make_pdbs_like(seed: SeedLike = 0, scale: float = 1.0) -> GraphDatabase:
    """Few large sparse macromolecule-like graphs (PDBS stand-in)."""
    return make_dataset("PDBS", seed=seed, scale=scale)


def make_pcm_like(seed: SeedLike = 0, scale: float = 1.0) -> GraphDatabase:
    """Few medium dense interaction-map-like graphs (PCM stand-in)."""
    return make_dataset("PCM", seed=seed, scale=scale)


def make_ppi_like(seed: SeedLike = 0, scale: float = 1.0) -> GraphDatabase:
    """Very few, largest, dense network-like graphs (PPI stand-in)."""
    return make_dataset("PPI", seed=seed, scale=scale)
