"""Quickstart: answer a subgraph query over a graph database.

Builds a small database of random labeled graphs, extracts a query from
one of them, and answers it with CFQL — the paper's hybrid vcFV algorithm
(CFL's filter + GraphQL's ordering), which needs no index at all.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import create_engine
from repro.graph import generate_database, random_walk_query


def main() -> None:
    # A database of 100 random connected molecules-ish graphs.
    db = generate_database(
        num_graphs=100, num_vertices=30, avg_degree=3.0, num_labels=6, seed=0,
        name="quickstart",
    )
    print(f"database: {db}")
    print(f"stats:    {db.stats().as_row()}")

    # Sample a 6-edge query from one data graph (so it has >= 1 answer).
    query = random_walk_query(db[0], num_edges=6, seed=1, name="q0")
    assert query is not None
    print(f"query:    {query}")

    # vcFV algorithms are index-free: build_index() is a no-op.
    engine = create_engine(db, "CFQL")
    engine.build_index()

    result = engine.query(query)
    print(f"\nanswer set A(q):    {sorted(result.answers)}")
    print(f"candidate set C(q): {len(result.candidates)} graphs")
    print(f"filtering time:     {result.filtering_time * 1000:.2f} ms")
    print(f"verification time:  {result.verification_time * 1000:.2f} ms")
    precision = result.precision
    print(f"filtering precision |A|/|C|: {precision:.3f}" if precision else "")

    # The sampled source graph must be among the answers.
    assert 0 in result.answers


if __name__ == "__main__":
    main()
