"""Frequently updated databases: the index-maintenance story.

The paper's introduction argues IFV indices are a liability when the
database changes often (purchase networks, trading records): every insert
and delete must update the index.  This example streams a mixed
add/remove/query workload through Grapes (index-based) and CFQL
(index-free), timing the maintenance cost each pays — and verifying both
always return the same answers.

Run:  python examples/dynamic_database.py
"""

from __future__ import annotations

import random

from repro import create_engine
from repro.graph import GraphDatabase, generate_graph, random_walk_query
from repro.utils.timing import Timer


def build_initial(seed: int) -> GraphDatabase:
    db = GraphDatabase(name="stream")
    rng = random.Random(seed)
    for _ in range(60):
        db.add_graph(generate_graph(25, 3.0, 5, seed=rng.getrandbits(32)))
    return db


def main() -> None:
    rng = random.Random(7)
    db_grapes = build_initial(0)
    db_cfql = build_initial(0)

    grapes = create_engine(db_grapes, "Grapes", index_max_path_edges=3)
    cfql = create_engine(db_cfql, "CFQL")
    with Timer() as t_initial:
        grapes.build_index()
    print(f"initial Grapes index build: {t_initial.elapsed * 1000:.1f} ms")
    cfql.build_index()

    maintenance = {"Grapes": Timer(), "CFQL": Timer()}
    checked = 0
    for step in range(60):
        action = rng.choice(["add", "add", "remove", "query"])
        if action == "add":
            graph = generate_graph(25, 3.0, 5, seed=rng.getrandbits(32))
            with maintenance["Grapes"]:
                grapes.add_graph(graph)
            with maintenance["CFQL"]:
                cfql.add_graph(graph)
        elif action == "remove" and len(db_grapes) > 10:
            victim = rng.choice(db_grapes.ids())
            with maintenance["Grapes"]:
                grapes.remove_graph(victim)
            with maintenance["CFQL"]:
                cfql.remove_graph(victim)
        else:
            source = db_grapes[rng.choice(db_grapes.ids())]
            query = random_walk_query(source, 5, seed=rng.getrandbits(32))
            if query is None:
                continue
            a = grapes.query(query).answers
            b = cfql.query(query).answers
            assert a == b, f"divergence at step {step}"
            checked += 1

    print(f"\nmaintenance time over 60 update steps:")
    for name, timer in maintenance.items():
        print(f"  {name:<7} {timer.elapsed * 1000:>8.1f} ms")
    ratio = maintenance["Grapes"].elapsed / max(maintenance["CFQL"].elapsed, 1e-9)
    print(f"\nindex maintenance overhead of Grapes vs CFQL: {ratio:.0f}x")
    print(f"answer sets agreed on all {checked} interleaved queries ✓")


if __name__ == "__main__":
    main()
