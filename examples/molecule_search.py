"""Molecule substructure search: IFV vs vcFV on an AIDS-like database.

The classic subgraph-query workload: thousands of small sparse molecule
graphs, queried for substructures.  This example builds the AIDS stand-in,
runs the same query set through an IFV algorithm (Grapes: path-trie index
+ VF2) and the index-free CFQL, and compares indexing cost, query time and
filtering precision — the core comparison of the paper.

Run:  python examples/molecule_search.py
"""

from __future__ import annotations

from statistics import mean

from repro import aggregate_results, create_engine
from repro.workloads import generate_query_set, make_aids_like


def main() -> None:
    db = make_aids_like(seed=0, scale=0.25)  # 200 molecules of 45 atoms
    print(f"database: {db}  ({db.stats().as_row()})")

    query_set = generate_query_set(db, num_edges=8, dense=False, size=20, seed=1)
    print(f"query set: {query_set.name} with {len(query_set)} queries\n")

    for name in ("Grapes", "CFQL"):
        engine = create_engine(db, name, index_max_path_edges=3)
        indexing = engine.build_index()
        results = engine.query_many(list(query_set.queries))
        report = aggregate_results(results)
        print(f"--- {name} ---")
        print(f"indexing time:       {indexing:.3f} s"
              + ("  (index-free)" if indexing == 0 else ""))
        print(f"index memory:        {engine.index_memory_bytes() / 1024:.1f} KiB")
        print(f"avg query time:      {report.avg_query_time * 1000:.2f} ms")
        print(f"avg filtering time:  {report.avg_filtering_time * 1000:.2f} ms")
        print(f"avg verification:    {report.avg_verification_time * 1000:.2f} ms")
        print(f"filtering precision: {report.filtering_precision:.3f}")
        print(f"avg |C(q)|:          {report.avg_candidates:.1f}\n")

    # Consistency: both engines agree on every answer set.
    grapes = create_engine(db, "Grapes", index_max_path_edges=3)
    grapes.build_index()
    cfql = create_engine(db, "CFQL")
    for query in query_set:
        assert grapes.query(query).answers == cfql.query(query).answers
    print("answer sets identical across algorithms ✓")


if __name__ == "__main__":
    main()
