"""Regenerate every table and figure of the paper's evaluation section.

Runs the two experiment matrices (real-world stand-ins and synthetic
sweeps) at the benchmark configuration and prints all artifacts —
Tables IV-IX and Figures 2-9 — in one go.  Environment variables
``REPRO_BENCH_SCALE``, ``REPRO_BENCH_QUERIES``, ``REPRO_BENCH_QUERY_LIMIT``
and ``REPRO_BENCH_INDEX_LIMIT`` scale the run (see repro.bench.harness).

Run:  python examples/reproduce_paper.py            # default scale
      REPRO_BENCH_SCALE=0.3 python examples/reproduce_paper.py   # quicker
"""

from __future__ import annotations

import time

from repro.bench import BenchConfig
from repro.bench.experiments import (
    fig2_filtering_precision,
    fig3_filtering_time,
    fig4_verification_time,
    fig5_per_si_test_time,
    fig6_candidate_counts,
    fig7_query_time,
    fig8_synthetic_precision,
    fig9_synthetic_filtering_time,
    table4_dataset_stats,
    table5_queryset_stats,
    table6_indexing_time,
    table7_memory_cost,
    table8_synthetic_indexing_time,
    table9_synthetic_memory_cost,
)

ARTIFACTS = [
    ("Table IV", table4_dataset_stats),
    ("Table V", table5_queryset_stats),
    ("Table VI", table6_indexing_time),
    ("Figure 2", fig2_filtering_precision),
    ("Figure 3", fig3_filtering_time),
    ("Figure 4", fig4_verification_time),
    ("Figure 5", fig5_per_si_test_time),
    ("Figure 6", fig6_candidate_counts),
    ("Figure 7", fig7_query_time),
    ("Table VII", table7_memory_cost),
    ("Table VIII", table8_synthetic_indexing_time),
    ("Figure 8", fig8_synthetic_precision),
    ("Figure 9", fig9_synthetic_filtering_time),
    ("Table IX", table9_synthetic_memory_cost),
]


def main() -> None:
    config = BenchConfig.from_env()
    print(f"configuration: {config}\n")
    started = time.time()
    for name, producer in ARTIFACTS:
        print(f"{'=' * 72}\n{name}\n{'=' * 72}")
        tables = producer(config)
        if hasattr(tables, "format_text"):
            tables = {None: tables}
        for table in tables.values():
            print(table.format_text())
            print()
    print(f"total wall time: {time.time() - started:.0f} s")


if __name__ == "__main__":
    main()
