"""Run all eight competing algorithms (Table III) on one dataset.

A miniature of the paper's whole evaluation: build each of the IFV, vcFV
and IvcFV algorithms over the same PCM-like database, answer the same
query set, and print a comparison table — indexing time, query time,
filtering precision, candidate counts, memory.

Run:  python examples/algorithm_comparison.py
"""

from __future__ import annotations

from repro import ALGORITHM_CATEGORIES, aggregate_results, create_engine
from repro.bench.reporting import Table
from repro.utils.errors import TimeLimitExceeded
from repro.workloads import generate_query_set, make_pcm_like

ALGORITHMS = [
    "CT-Index", "Grapes", "GGSX",          # IFV
    "CFL", "GraphQL", "CFQL",              # vcFV
    "vcGrapes", "vcGGSX",                  # IvcFV
]


def main() -> None:
    db = make_pcm_like(seed=0, scale=0.2)
    print(f"database: {db}  ({db.stats().as_row()})\n")
    queries = generate_query_set(db, num_edges=8, dense=True, size=10, seed=3)

    table = Table(
        f"All algorithms on {db.name} stand-in ({queries.name} × {len(queries)})",
        ["category", "indexing (s)", "query (ms)", "precision", "|C(q)|", "memory (KiB)"],
    )
    reference: dict[int, frozenset[int]] | None = None
    for name in ALGORITHMS:
        engine = create_engine(
            db, name, index_max_path_edges=3, index_max_tree_edges=3
        )
        try:
            indexing = engine.build_index(time_limit=30.0)
        except TimeLimitExceeded:
            table.add_row(name, {"category": ALGORITHM_CATEGORIES[name],
                                 "indexing (s)": "OOT"})
            continue
        results = engine.query_many(list(queries.queries), time_limit=10.0)
        report = aggregate_results(results)
        answers = {i: frozenset(r.answers) for i, r in enumerate(results)}
        if reference is None:
            reference = answers
        else:
            assert answers == reference, f"{name} disagrees with the others"
        memory = max(
            engine.index_memory_bytes(), report.max_auxiliary_memory_bytes
        )
        table.add_row(
            name,
            {
                "category": ALGORITHM_CATEGORIES[name],
                "indexing (s)": indexing,
                "query (ms)": report.avg_query_time * 1000,
                "precision": report.filtering_precision,
                "|C(q)|": report.avg_candidates,
                "memory (KiB)": memory / 1024,
            },
        )
    print(table.format_text())
    print("\nanswer sets identical across all completed algorithms ✓")


if __name__ == "__main__":
    main()
