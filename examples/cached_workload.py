"""Query caching on an interactive refinement workload.

Interactive graph exploration produces *correlated* queries: an analyst
grows or shrinks a pattern step by step.  The GraphCache-style wrapper
(Related Work of the paper; Wang et al. EDBT'16/'17) exploits containment
between consecutive queries — answers of a sub-pattern bound the answers
of its extensions — on top of any of the competing algorithms.

Run:  python examples/cached_workload.py
"""

from __future__ import annotations

import random

from repro.core import CachingPipeline, SubgraphQueryEngine, create_pipeline
from repro.graph import random_walk_query
from repro.utils.timing import Timer
from repro.workloads import make_aids_like


def refinement_workload(db, sessions: int, seed: int):
    """Each 'session' grows one walk pattern through 3, 5, 7, 9 edges."""
    rng = random.Random(seed)
    queries = []
    for _ in range(sessions):
        source = db[rng.choice(db.ids())]
        walk_seed = rng.getrandbits(32)
        for edges in (3, 5, 7, 9):
            query = random_walk_query(source, edges, seed=walk_seed)
            if query is not None:
                queries.append(query)
    return queries


def main() -> None:
    db = make_aids_like(seed=0, scale=0.2)
    queries = refinement_workload(db, sessions=10, seed=5)
    print(f"database: {db}")
    print(f"workload: {len(queries)} correlated queries\n")

    plain = SubgraphQueryEngine(db, create_pipeline("CFQL"))
    cached = SubgraphQueryEngine(
        db, CachingPipeline(create_pipeline("CFQL"), capacity=64)
    )

    with Timer() as t_plain:
        plain_answers = [plain.query(q).answers for q in queries]
    with Timer() as t_cached:
        cached_answers = [cached.query(q).answers for q in queries]
    assert plain_answers == cached_answers

    stats = cached.pipeline.stats
    print(f"{'':<14}{'total time':>12}")
    print(f"{'CFQL':<14}{t_plain.elapsed * 1000:>10.0f} ms")
    print(f"{'cached-CFQL':<14}{t_cached.elapsed * 1000:>10.0f} ms")
    print(f"\ncache hits:     {stats.subgraph_hits + stats.supergraph_hits}"
          f" over {stats.queries} queries (hit rate {stats.hit_rate():.0%})")
    print(f"graphs pruned:  {stats.graphs_pruned} per-graph tests avoided")
    print(f"speedup:        {t_plain.elapsed / t_cached.elapsed:.2f}x")
    print("\nanswer sets identical with and without the cache ✓")


if __name__ == "__main__":
    main()
