"""Protein-interaction maps: where verification matters.

On PCM-like data (dense, hub-dominated interaction maps) the subgraph
isomorphism test is the costly step — the regime where the paper shows
modern matching enumeration beating VF2 (Figure 5 and the Section IV-D
discussion).  This example measures the full first-match subgraph
isomorphism test of VF2 against CFL, GraphQL and CFQL over every
(query, network) pair, for both a dense and a sparse query set.

Run:  python examples/protein_networks.py
"""

from __future__ import annotations

from statistics import mean

from repro.matching import CFLMatcher, CFQLMatcher, GraphQLMatcher, VF2Matcher
from repro.utils.timing import Timer
from repro.workloads import generate_query_set, make_pcm_like


def measure(db, queries, matchers) -> dict[str, float]:
    """Mean SI-test time (ms) per (query, network) pair."""
    results: dict[str, float] = {}
    for matcher in matchers:
        times = []
        for query in queries:
            for network in db.graphs():
                with Timer() as t:
                    matcher.exists(query, network)
                times.append(t.elapsed)
        results[matcher.name] = mean(times) * 1000
    return results


def main() -> None:
    db = make_pcm_like(seed=0, scale=0.3)
    print(f"database: {db}  ({db.stats().as_row()})\n")

    matchers = [VF2Matcher(), CFLMatcher(), GraphQLMatcher(), CFQLMatcher()]
    for edges, dense in ((12, True), (16, False)):
        queries = generate_query_set(db, edges, dense, size=6, seed=2)
        timings = measure(db, queries, matchers)
        baseline = timings["VF2"]
        print(f"--- {queries.name} ({len(queries)} queries × {len(db)} networks) ---")
        print(f"{'algorithm':<10} {'per SI test (ms)':>18} {'speedup vs VF2':>16}")
        for name, avg_ms in timings.items():
            print(f"{name:<10} {avg_ms:>18.3f} {baseline / avg_ms:>15.1f}x")
        print()

        # All matchers must agree on every containment decision.
        for query in queries:
            for network in db.graphs():
                decisions = {m.exists(query, network) for m in matchers}
                assert len(decisions) == 1
    print("containment decisions identical across matchers ✓")


if __name__ == "__main__":
    main()
