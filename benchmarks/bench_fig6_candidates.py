"""Experiment fig6 — Figure 6: number of candidate graphs |C(q)|.

Shape claim (Section IV-B3): the candidate counts of vcFV algorithms are
close to those of IFV algorithms — the verification speedup in fig4/fig5
comes from the matching algorithm, not from a smaller candidate set.
"""

from __future__ import annotations

from repro.bench.experiments import fig6_candidate_counts
from repro.bench.harness import get_query_sets, get_real_dataset
from repro.core import create_engine

from shapes import paired_cells


def test_fig6_candidate_counts(benchmark, config, emit):
    tables = fig6_candidate_counts(config)
    emit("fig6_candidates", tables)

    db_sizes = {
        name: len(get_real_dataset(name, config))
        for name in tables
    }

    for dataset, table in tables.items():
        # Candidate sets never exceed the database.
        for algorithm in table.row_labels():
            for _, value in (
                (c, v) for c in table.columns
                for v in [table.cell(algorithm, c)] if isinstance(v, (int, float))
            ):
                assert 0 <= value <= db_sizes[dataset]
        # Competitive: CFQL's candidate count within 3x of Grapes'
        # wherever both ran (the paper shows them close).
        for grapes, cfql in paired_cells(table, "Grapes", "CFQL"):
            if grapes > 0:
                assert cfql <= 3.0 * grapes + 1.0, dataset

    # Benchmark: one full CFQL filtering pass over the AIDS-like database.
    db = get_real_dataset("AIDS", config)
    engine = create_engine(db, "CFQL")
    query = get_query_sets("AIDS", config)[f"Q{min(config.edge_counts)}S"].queries[0]
    benchmark.pedantic(lambda: engine.query(query), rounds=3, iterations=1)
