"""Ablation B — Grapes index parameters: path length and locations.

The paper fixes Grapes/GGSX at path length 4 (Section IV-A).  This
ablation sweeps the path length and toggles location storage, exposing the
indexing-time / memory / filtering-precision trade-off that the parameter
controls.
"""

from __future__ import annotations

from statistics import mean

from repro.bench.harness import get_query_sets, get_real_dataset
from repro.bench.reporting import Table
from repro.index import GrapesIndex
from repro.matching import VF2Matcher
from repro.utils.timing import Timer


def test_ablation_grapes_path_length(benchmark, config, emit):
    db = get_real_dataset("AIDS", config)
    queries = list(get_query_sets("AIDS", config)[f"Q{max(config.edge_counts)}S"].queries)
    vf2 = VF2Matcher()
    answers = {
        id(q): {gid for gid, g in db.items() if vf2.exists(q, g)} for q in queries
    }

    table = Table(
        "Ablation B — Grapes path length on AIDS stand-in",
        ["indexing time (s)", "memory (MB)", "filtering precision"],
    )
    precisions_by_length: dict[int, float] = {}
    times_by_length: dict[int, float] = {}
    for length in (1, 2, 3, 4):
        index = GrapesIndex(max_path_edges=length)
        with Timer() as t:
            index.build(db)
        per_query = []
        for q in queries:
            candidates = index.candidates(q)
            assert answers[id(q)] <= candidates  # soundness at any length
            if candidates:
                per_query.append(len(answers[id(q)]) / len(candidates))
        precision = mean(per_query) if per_query else 1.0
        precisions_by_length[length] = precision
        times_by_length[length] = t.elapsed
        table.add_row(
            f"length {length}",
            {
                "indexing time (s)": t.elapsed,
                "memory (MB)": index.memory_bytes() / (1024 * 1024),
                "filtering precision": precision,
            },
        )
    emit("ablation_index_path_length", table)

    # Longer paths filter at least as precisely and cost at least as much
    # to build (monotone trade-off).
    assert precisions_by_length[4] >= precisions_by_length[1] - 1e-9
    assert times_by_length[4] > times_by_length[1]

    benchmark.pedantic(
        lambda: GrapesIndex(max_path_edges=2).build(db), rounds=3, iterations=1
    )


def test_ablation_grapes_locations(benchmark, config, emit):
    db = get_real_dataset("AIDS", config)
    with_loc = GrapesIndex(max_path_edges=config.max_path_edges, with_locations=True)
    without = GrapesIndex(max_path_edges=config.max_path_edges, with_locations=False)
    with Timer() as t_with:
        with_loc.build(db)
    with Timer() as t_without:
        without.build(db)

    table = Table(
        "Ablation B — Grapes location storage on AIDS stand-in",
        ["indexing time (s)", "memory (MB)"],
    )
    table.add_row(
        "with locations",
        {
            "indexing time (s)": t_with.elapsed,
            "memory (MB)": with_loc.memory_bytes() / (1024 * 1024),
        },
    )
    table.add_row(
        "without locations",
        {
            "indexing time (s)": t_without.elapsed,
            "memory (MB)": without.memory_bytes() / (1024 * 1024),
        },
    )
    emit("ablation_index_locations", table)

    # Locations cost memory but never change the candidate sets.
    assert with_loc.memory_bytes() > without.memory_bytes()
    query = get_query_sets("AIDS", config)[f"Q{min(config.edge_counts)}S"].queries[0]
    assert with_loc.candidates(query) == without.candidates(query)

    benchmark(lambda: with_loc.candidates(query))
