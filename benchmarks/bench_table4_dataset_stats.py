"""Experiment table4 — Table IV: statistics of the real-world stand-ins.

Regenerates the dataset-statistics table with the paper's values alongside,
and benchmarks stand-in dataset construction.
"""

from __future__ import annotations

from repro.bench.experiments import table4_dataset_stats
from repro.bench.harness import REAL_WORLD_DATASETS, get_real_dataset
from repro.workloads import make_dataset


def test_table4_dataset_stats(benchmark, config, emit):
    table = table4_dataset_stats(config)
    emit("table4_dataset_stats", table)

    # Shape: the structure-class orderings of Table IV must hold for the
    # stand-ins (these are what the evaluation's conclusions rest on).
    graphs = {d: table.cell("#graphs (ours)", d) for d in REAL_WORLD_DATASETS}
    vertices = {d: table.cell("#vertices per graph (ours)", d) for d in REAL_WORLD_DATASETS}
    degree = {d: table.cell("degree per graph (ours)", d) for d in REAL_WORLD_DATASETS}
    assert graphs["AIDS"] > graphs["PDBS"] > graphs["PPI"]
    assert vertices["PPI"] > vertices["PCM"] > vertices["AIDS"]
    assert degree["PCM"] > 4 * degree["AIDS"]
    assert degree["PPI"] > 3 * degree["PDBS"]

    # Warm caches are measured by the harness; benchmark raw generation.
    benchmark.pedantic(
        lambda: make_dataset("AIDS", seed=1, scale=0.02), rounds=3, iterations=1
    )
    assert get_real_dataset("AIDS", config).stats().num_graphs == graphs["AIDS"]
