"""Ablation D — GraphCache-style query caching on a correlated workload.

The paper's Related Work cites graph caches (Wang et al. [33], [34]) as an
orthogonal accelerator for any subgraph query algorithm.  This ablation
replays a correlated query workload — growing variants of shared base
patterns, as produced by interactive query refinement — with and without
the :class:`~repro.core.cache.CachingPipeline`, and reports hit rates and
the work saved.
"""

from __future__ import annotations

import random

from repro.bench.harness import get_real_dataset
from repro.bench.reporting import Table
from repro.core import CachingPipeline, create_pipeline
from repro.graph import random_walk_query
from repro.utils.timing import Timer


def correlated_workload(db, size: int, seed: int):
    """Queries that grow out of shared base patterns (cache-friendly)."""
    rng = random.Random(seed)
    queries = []
    while len(queries) < size:
        source = db[rng.choice(db.ids())]
        base_seed = rng.getrandbits(32)
        # A family of nested queries from one walk: 3, 5 and 7 edges.
        for edges in (3, 5, 7):
            query = random_walk_query(source, edges, seed=base_seed)
            if query is not None:
                queries.append(query)
    return queries[:size]


def test_ablation_query_cache(benchmark, config, emit):
    db = get_real_dataset("AIDS", config)
    queries = correlated_workload(db, size=24, seed=9)

    plain = create_pipeline("CFQL")
    cached = CachingPipeline(create_pipeline("CFQL"), capacity=32)

    with Timer() as t_plain:
        plain_answers = [plain.execute(q, db).answers for q in queries]
    with Timer() as t_cached:
        cached_answers = [cached.execute(q, db).answers for q in queries]
    assert plain_answers == cached_answers  # caching never changes answers

    stats = cached.stats
    table = Table(
        "Ablation D — query cache on a correlated workload (AIDS stand-in)",
        ["total time (ms)", "hits", "graphs pruned"],
    )
    table.add_row(
        "CFQL",
        {"total time (ms)": t_plain.elapsed * 1000, "hits": 0, "graphs pruned": 0},
    )
    table.add_row(
        "cached-CFQL",
        {
            "total time (ms)": t_cached.elapsed * 1000,
            "hits": stats.subgraph_hits + stats.supergraph_hits,
            "graphs pruned": stats.graphs_pruned,
        },
    )
    emit("ablation_query_cache", table)

    # The correlated workload must actually hit the cache and prune work.
    assert stats.subgraph_hits + stats.supergraph_hits > 0
    assert stats.graphs_pruned > 0

    # Benchmark: one cached query execution (warm cache).
    benchmark.pedantic(
        lambda: cached.execute(queries[-1], db), rounds=3, iterations=1
    )
