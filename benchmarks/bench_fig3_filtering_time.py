"""Experiment fig3 — Figure 3: filtering time on real-world stand-ins.

Shape claims (Section IV-B2): CFL's filter is faster than GraphQL's (its
time complexity is better); all filtering is polynomial and small in
absolute terms compared to the query time limit.
"""

from __future__ import annotations

from repro.bench.experiments import fig3_filtering_time
from repro.bench.harness import get_query_sets, get_real_dataset
from repro.matching import GraphQLMatcher

from shapes import row_mean


def test_fig3_filtering_time(benchmark, config, emit):
    tables = fig3_filtering_time(config)
    emit("fig3_filtering_time", tables)

    # CFL filter faster than GraphQL filter on average (its complexity is
    # O(E(q)·E(G)) vs GraphQL's bigraph-matching refinement).
    wins = 0
    comparisons = 0
    for table in tables.values():
        cfl = row_mean(table, "CFL")
        graphql = row_mean(table, "GraphQL")
        if cfl is not None and graphql is not None:
            comparisons += 1
            if cfl < graphql:
                wins += 1
    assert comparisons > 0 and wins >= (comparisons + 1) // 2

    # Filtering stays far below the query time limit everywhere.
    limit_ms = config.query_time_limit * 1000.0
    for table in tables.values():
        for algorithm in table.row_labels():
            mean_value = row_mean(table, algorithm)
            if mean_value is not None:
                assert mean_value < limit_ms

    # Benchmark: GraphQL's (slower) filter on one graph for contrast.
    db = get_real_dataset("AIDS", config)
    query = get_query_sets("AIDS", config)[f"Q{min(config.edge_counts)}S"].queries[0]
    graph = db[db.ids()[0]]
    matcher = GraphQLMatcher()
    benchmark(lambda: matcher.build_candidates(query, graph))
