#!/usr/bin/env python3
"""Thin wrapper around ``python -m repro bench-micro``.

Usage::

    PYTHONPATH=src python benchmarks/microbench.py [--quick] [--jobs N] [-o PATH]
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench-micro", *sys.argv[1:]]))
