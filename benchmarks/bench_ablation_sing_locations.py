"""Ablation F — locational (SING) vs count-based (Grapes) path filtering.

Both indices enumerate the same bounded paths; they differ in what they
remember — SING keeps *where* each feature starts and filters per query
vertex, Grapes keeps *how often* each feature occurs and filters per
graph.  This ablation compares indexing time, memory and filtering
precision of the two pieces of information on the same dataset, and checks
both stay sound.
"""

from __future__ import annotations

from statistics import mean

from repro.bench.harness import get_query_sets, get_real_dataset
from repro.bench.reporting import Table
from repro.index import GrapesIndex, SINGIndex
from repro.matching import VF2Matcher
from repro.utils.timing import Timer


def test_ablation_sing_vs_grapes(benchmark, config, emit):
    db = get_real_dataset("AIDS", config)
    queries = list(
        get_query_sets("AIDS", config)[f"Q{max(config.edge_counts)}S"].queries
    )
    vf2 = VF2Matcher()
    answers = {
        id(q): {gid for gid, g in db.items() if vf2.exists(q, g)} for q in queries
    }

    table = Table(
        "Ablation F — SING (locations) vs Grapes (counts) on AIDS stand-in",
        ["indexing time (s)", "memory (MB)", "filtering precision"],
    )
    results = {}
    for index in (
        SINGIndex(max_path_edges=config.max_path_edges),
        GrapesIndex(max_path_edges=config.max_path_edges, with_locations=False),
    ):
        with Timer() as t:
            index.build(db)
        per_query = []
        for q in queries:
            candidates = index.candidates(q)
            assert answers[id(q)] <= candidates, index.name  # soundness
            if candidates:
                per_query.append(len(answers[id(q)]) / len(candidates))
        precision = mean(per_query) if per_query else 1.0
        results[index.name] = precision
        table.add_row(
            index.name,
            {
                "indexing time (s)": t.elapsed,
                "memory (MB)": index.memory_bytes() / (1024 * 1024),
                "filtering precision": precision,
            },
        )
    emit("ablation_sing_locations", table)

    # Both filters must be meaningfully selective on molecule-like data.
    assert results["SING"] > 0.3
    assert results["Grapes"] > 0.3

    # Benchmark: one SING filtering pass over the database.
    sing = SINGIndex(max_path_edges=config.max_path_edges)
    sing.build(db)
    query = queries[0]
    benchmark(lambda: sing.candidates(query))
