"""Experiment fig8 — Figure 8: filtering precision on the synthetic sweeps.

Shape claims (Section IV-C2): at |Σ| = 1 the filters degenerate (all data
graphs become candidates — no label information); precision improves as
|Σ| grows from 10 to 80; Grapes and CFQL clearly outfilter GGSX; vcGrapes
is at least as precise as both of its constituents.
"""

from __future__ import annotations

from repro.bench.experiments import fig8_synthetic_precision
from repro.bench.harness import get_synthetic_sweep, synthetic_matrix

from shapes import paired_cells


def test_fig8_synthetic_precision(benchmark, config, emit):
    tables = fig8_synthetic_precision(config)
    emit("fig8_synthetic_precision", tables)

    labels_table = tables["num_labels"]
    matrix = synthetic_matrix(config)

    # |Σ| = 1: every algorithm returns (nearly) the whole database as
    # candidates — the filter has nothing to work with.
    db_size = len(get_synthetic_sweep("num_labels", config)[1])
    for algorithm in ("CFQL", "Grapes", "GGSX"):
        report = matrix.reports.get(("num_labels", 1, algorithm))
        if report is not None and report.avg_candidates is not None:
            assert report.avg_candidates >= 0.95 * db_size, algorithm

    # Precision at the largest label count beats precision at |Σ| = 10.
    label_values = dict(config.synthetic_sweeps)["num_labels"]
    for algorithm in ("CFQL", "Grapes"):
        low = labels_table.cell(algorithm, "10")
        high = labels_table.cell(algorithm, str(max(label_values)))
        if isinstance(low, float) and isinstance(high, float):
            assert high >= low - 0.05, algorithm

    # Grapes ≥ GGSX on every sweep point where both ran.
    for table in tables.values():
        for grapes, ggsx in paired_cells(table, "Grapes", "GGSX"):
            assert grapes >= ggsx - 1e-9

    # vcGrapes (two-level filter) ≥ max(Grapes, CFQL) - tolerance.
    for table in tables.values():
        for vc, grapes in paired_cells(table, "vcGrapes", "Grapes"):
            assert vc >= grapes - 1e-9

    # Benchmark: one synthetic-sweep filtering query via the matrix's
    # cached engines is not reproducible in isolation; measure a fresh
    # CFQL filter on the base synthetic dataset instead.
    from repro.matching import CFQLMatcher
    from repro.workloads import generate_query_set

    sweep = get_synthetic_sweep("num_labels", config)
    db = sweep[20] if 20 in sweep else sweep[sorted(sweep)[0]]
    query = generate_query_set(db, 8, dense=False, size=1, seed=5).queries[0]
    graph = db[db.ids()[0]]
    matcher = CFQLMatcher()
    benchmark(lambda: matcher.build_candidates(query, graph))
