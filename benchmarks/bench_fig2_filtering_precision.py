"""Experiment fig2 — Figure 2: filtering precision on real-world stand-ins.

Shape claims (Section IV-B2): Grapes' count-based filter is at least as
precise as GGSX's boolean filter; vcFV filtering precision is competitive
with the IFV algorithms.
"""

from __future__ import annotations

from repro.bench.experiments import fig2_filtering_precision
from repro.bench.harness import get_query_sets, get_real_dataset
from repro.matching import CFQLMatcher

from shapes import float_cells, paired_cells, row_mean


def test_fig2_filtering_precision(benchmark, config, emit):
    tables = fig2_filtering_precision(config)
    emit("fig2_filtering_precision", tables)

    for dataset, table in tables.items():
        # Precision is a ratio in (0, 1].
        for algorithm in table.row_labels():
            for value in float_cells(table, algorithm):
                assert 0.0 < value <= 1.0, (dataset, algorithm)
        # Grapes (counts + locations) ≥ GGSX (boolean) wherever both ran.
        for grapes, ggsx in paired_cells(table, "Grapes", "GGSX"):
            assert grapes >= ggsx - 1e-9, dataset

    # vcFV precision competitive with IFV: CFQL's mean within 25% of the
    # best IFV mean on AIDS (the paper's headline comparison dataset).
    aids = tables["AIDS"]
    cfql = row_mean(aids, "CFQL")
    ifv_best = max(
        m for m in (row_mean(aids, a) for a in ("CT-Index", "Grapes", "GGSX"))
        if m is not None
    )
    assert cfql is not None and cfql >= 0.75 * ifv_best

    # Benchmark: one vertex-connectivity filter pass on one data graph.
    db = get_real_dataset("AIDS", config)
    query = get_query_sets("AIDS", config)[f"Q{max(config.edge_counts)}S"].queries[0]
    graph = db[db.ids()[0]]
    matcher = CFQLMatcher()
    benchmark(lambda: matcher.build_candidates(query, graph))
