"""Shared configuration for the benchmark suite.

Every benchmark reads the same :class:`~repro.bench.harness.BenchConfig`
(overridable through ``REPRO_BENCH_*`` environment variables), so the two
expensive experiment matrices are executed once per session and shared by
all table/figure benchmarks.

Each benchmark prints its table(s) and also writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import BenchConfig
from repro.bench.reporting import Table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    return BenchConfig.from_env()


@pytest.fixture(scope="session")
def emit():
    """Print tables and persist them under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, tables: Table | list[Table] | dict[str, Table]) -> None:
        if isinstance(tables, Table):
            tables = [tables]
        elif isinstance(tables, dict):
            tables = list(tables.values())
        text = "\n\n".join(t.format_text() for t in tables)
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
