"""Experiment fig4 — Figure 4: verification time on real-world stand-ins.

Shape claim (Section IV-B3): vcFV and IvcFV algorithms, which verify with
the modern matching enumeration, consistently beat the VF2-based IFV
algorithms on verification time.
"""

from __future__ import annotations

from repro.bench.experiments import fig4_verification_time
from repro.bench.harness import get_query_sets, get_real_dataset
from repro.matching import CFQLMatcher, VF2Matcher

from shapes import row_mean


def test_fig4_verification_time(benchmark, config, emit):
    tables = fig4_verification_time(config)
    emit("fig4_verification_time", tables)

    # Mean verification time of CFQL beats the VF2-backed IFV algorithms
    # on the large-graph datasets, where verification dominates.
    wins = 0
    comparisons = 0
    for dataset in ("PDBS", "PCM", "PPI"):
        table = tables[dataset]
        cfql = row_mean(table, "CFQL")
        for ifv in ("Grapes", "GGSX"):
            ifv_mean = row_mean(table, ifv)
            if cfql is not None and ifv_mean is not None:
                comparisons += 1
                if cfql <= ifv_mean:
                    wins += 1
    assert comparisons > 0 and wins >= (comparisons + 1) // 2

    # Benchmark: one first-match verification with CFQL vs VF2's cost is
    # covered by fig5; here measure the full CFQL exists() path.
    db = get_real_dataset("PDBS", config)
    query = get_query_sets("PDBS", config)[f"Q{max(config.edge_counts)}S"].queries[0]
    graph = db[db.ids()[0]]
    matcher = CFQLMatcher()
    vf2 = VF2Matcher()
    assert matcher.exists(query, graph) == vf2.exists(query, graph)
    benchmark(lambda: matcher.exists(query, graph))
