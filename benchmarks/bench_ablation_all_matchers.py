"""Ablation E — the full matcher spectrum: direct vs preprocessing.

Section II-B2 of the paper claims the direct-enumeration algorithms
(Ullmann, VF2, QuickSI, SPath) suffer from ineffective matching orders and
signature filters of dataset-dependent value, while the preprocessing-
enumeration family (GraphQL, TurboIso, CFL, and the hybrid CFQL) wins by
building candidate structures first.  This ablation runs all eight
matchers as first-match subgraph isomorphism tests over one dataset's
(query, graph) matrix.
"""

from __future__ import annotations

from statistics import mean

from repro.bench.harness import get_query_sets, get_real_dataset
from repro.bench.reporting import Table
from repro.matching import (
    CFLMatcher,
    CFQLMatcher,
    GraphQLMatcher,
    QuickSIMatcher,
    SPathMatcher,
    TurboIsoMatcher,
    UllmannMatcher,
    VF2Matcher,
)
from repro.utils.timing import Timer

DIRECT = ("Ullmann", "VF2", "QuickSI", "SPath")
PREPROCESSING = ("GraphQL", "TurboIso", "CFL", "CFQL")


def test_ablation_all_matchers(benchmark, config, emit):
    db = get_real_dataset("PCM", config)
    queries = list(
        get_query_sets("PCM", config)[f"Q{max(config.edge_counts)}D"].queries
    )
    matchers = [
        UllmannMatcher(),
        VF2Matcher(),
        QuickSIMatcher(),
        SPathMatcher(),
        GraphQLMatcher(),
        TurboIsoMatcher(),
        CFLMatcher(),
        CFQLMatcher(),
    ]

    timings: dict[str, float] = {}
    decisions: dict[str, list[bool]] = {}
    for matcher in matchers:
        times = []
        outcomes = []
        for query in queries:
            for graph in db.graphs():
                with Timer() as t:
                    outcomes.append(matcher.exists(query, graph))
                times.append(t.elapsed)
        timings[matcher.name] = mean(times) * 1000
        decisions[matcher.name] = outcomes

    # Correctness across the whole matrix before any performance claims.
    reference = decisions["VF2"]
    for name, outcome in decisions.items():
        assert outcome == reference, name

    table = Table(
        "Ablation E — all matchers, first-match SI test on PCM stand-in",
        ["family", "per SI test (ms)", "vs VF2"],
    )
    baseline = timings["VF2"]
    for matcher in matchers:
        name = matcher.name
        family = "direct" if name in DIRECT else "preprocessing"
        table.add_row(
            name,
            {
                "family": family,
                "per SI test (ms)": timings[name],
                "vs VF2": f"{baseline / timings[name]:.2f}x",
            },
        )
    emit("ablation_all_matchers", table)

    # Shape: the preprocessing-enumeration family's best matcher beats
    # every direct-enumeration matcher on this dense dataset.
    best_preprocessing = min(timings[n] for n in PREPROCESSING)
    best_direct = min(timings[n] for n in DIRECT)
    assert best_preprocessing < best_direct

    benchmark.pedantic(
        lambda: CFQLMatcher().exists(queries[0], db.graphs()[0]),
        rounds=3,
        iterations=1,
    )
