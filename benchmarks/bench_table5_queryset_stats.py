"""Experiment table5 — Table V: query set statistics.

Regenerates the per-dataset Q_iS/Q_iD statistics and benchmarks query-set
generation.
"""

from __future__ import annotations

from repro.bench.experiments import table5_queryset_stats
from repro.bench.harness import get_real_dataset
from repro.workloads import generate_query_set


def test_table5_queryset_stats(benchmark, config, emit):
    tables = table5_queryset_stats(config)
    emit("table5_queryset_stats", tables)

    smallest = f"Q{min(config.edge_counts)}S"
    largest_sparse = f"Q{max(config.edge_counts)}S"
    for dataset, table in tables.items():
        # Small sparse queries are (almost) all trees; larger ones less so
        # (Table V: % of trees decreases with query size).
        assert table.cell("% of trees", smallest) >= table.cell(
            "% of trees", largest_sparse
        )
        # Sparse queries of i edges have close to i+1 vertices.
        assert table.cell("|V| per q", smallest) >= min(config.edge_counts)

    db = get_real_dataset("AIDS", config)
    benchmark.pedantic(
        lambda: generate_query_set(db, 8, dense=False, size=5, seed=1),
        rounds=3,
        iterations=1,
    )
