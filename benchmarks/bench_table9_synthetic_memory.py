"""Experiment table9 — Table IX: memory cost on the synthetic sweeps.

Shape claims (Section IV-C3): CFQL's auxiliary memory stays small across
every sweep point (O(|V(q)|·|E(G)|)), while the Grapes/GGSX indices grow
with labels, degree, graph size and database size — to orders of magnitude
above the datasets themselves.
"""

from __future__ import annotations

from repro.bench.experiments import table9_synthetic_memory_cost

from shapes import float_cells, paired_cells


def test_table9_synthetic_memory_cost(benchmark, config, emit):
    tables = table9_synthetic_memory_cost(config)
    emit("table9_synthetic_memory", tables)

    for axis, table in tables.items():
        # CFQL auxiliary memory is below the index memory everywhere, and
        # far below it wherever the index is non-degenerate.  (At |Σ| = 1
        # the suffix trie collapses to a single chain — the paper's
        # Table IX shows the same near-parity there.)
        for cfql, grapes in paired_cells(table, "CFQL", "Grapes"):
            assert cfql < grapes, axis
            if grapes > 0.1:
                assert cfql < grapes / 10.0, axis
        for cfql, ggsx in paired_cells(table, "CFQL", "GGSX"):
            assert cfql < ggsx, axis
            if ggsx > 0.1:
                assert cfql < ggsx / 10.0, axis

    # Index memory grows along the degree axis (or hits OOT/OOM).
    degree_table = tables["avg_degree"]
    for algorithm in ("Grapes", "GGSX"):
        numeric = float_cells(degree_table, algorithm)
        last = degree_table.cell(algorithm, degree_table.columns[-1])
        assert last in ("OOT", "OOM") or numeric[-1] > numeric[0], algorithm

    # Benchmark: the deep-size walk over a built Grapes index (what the
    # memory rows cost to produce).
    from repro.bench.harness import get_synthetic_sweep
    from repro.index import GrapesIndex

    sweep = get_synthetic_sweep("num_labels", config)
    db = sweep[sorted(sweep)[0]]
    index = GrapesIndex(max_path_edges=config.max_path_edges)
    gid = db.ids()[0]
    index.add_graph(gid, db[gid])
    benchmark.pedantic(index.memory_bytes, rounds=3, iterations=1)
