"""Experiment table6 — Table VI: indexing time on real-world stand-ins.

Shape claims (paper Section IV-B1): CT-Index's tree/cycle enumeration is
far more expensive than path enumeration and fails on the dense datasets
(OOT); Grapes builds its trie faster than GGSX builds its suffix trie.
"""

from __future__ import annotations

from repro.bench.experiments import table6_indexing_time
from repro.bench.harness import get_real_dataset
from repro.index import GrapesIndex


def test_table6_indexing_time(benchmark, config, emit):
    table = table6_indexing_time(config)
    emit("table6_indexing_time", table)

    # Grapes and GGSX index every real-world stand-in.
    for dataset in ("AIDS", "PDBS"):
        assert isinstance(table.cell("Grapes", dataset), float)
        assert isinstance(table.cell("GGSX", dataset), float)

    # CT-Index is the slowest: OOT on at least one dense dataset, or at
    # minimum far slower than Grapes on AIDS.
    dense_failures = [
        table.cell("CT-Index", d) for d in ("PCM", "PPI")
    ]
    aids_ct = table.cell("CT-Index", "AIDS")
    aids_grapes = table.cell("Grapes", "AIDS")
    assert any(cell == "OOT" for cell in dense_failures) or (
        isinstance(aids_ct, float) and aids_ct > aids_grapes
    )

    # Benchmark: indexing one AIDS-like molecule.
    db = get_real_dataset("AIDS", config)
    graph = db[db.ids()[0]]

    def index_one():
        index = GrapesIndex(max_path_edges=config.max_path_edges)
        index.add_graph(0, graph)

    benchmark(index_one)
