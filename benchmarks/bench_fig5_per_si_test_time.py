"""Experiment fig5 — Figure 5: per-SI-test time (Equation 3).

Shape claim (Section IV-D, "Impact of the performance improvement in
subgraph matching"): the per-candidate subgraph isomorphism test of
vcFV/IvcFV algorithms is dramatically cheaper than the VF2 test inside the
IFV algorithms — in the paper up to four orders of magnitude; at our
Python scale we require a clear multiple on the verification-heavy
datasets.
"""

from __future__ import annotations

from repro.bench.experiments import fig5_per_si_test_time
from repro.bench.harness import get_query_sets, get_real_dataset
from repro.matching import VF2Matcher

from shapes import paired_cells


def test_fig5_per_si_test_time(benchmark, config, emit):
    tables = fig5_per_si_test_time(config)
    emit("fig5_per_si_test_time", tables)

    # Across all datasets, find the worst-case IFV/vcFV ratio: VF2-based
    # per-SI time must exceed CFQL's by a healthy factor somewhere, and be
    # no better than ~parity anywhere on the large datasets.
    best_ratio = 0.0
    for dataset in ("PDBS", "PCM", "PPI"):
        table = tables[dataset]
        for ifv in ("Grapes", "GGSX"):
            for ifv_time, cfql_time in paired_cells(table, ifv, "CFQL"):
                if cfql_time > 0:
                    best_ratio = max(best_ratio, ifv_time / cfql_time)
    assert best_ratio >= 2.0, f"expected VF2 >> CFQL somewhere, best ratio {best_ratio:.2f}"

    # Benchmark: one raw VF2 SI test on a PPI-like graph (the expensive
    # operation this whole figure is about).
    db = get_real_dataset("PPI", config)
    query = get_query_sets("PPI", config)[f"Q{min(config.edge_counts)}S"].queries[0]
    graph = db[db.ids()[0]]
    vf2 = VF2Matcher()
    benchmark(lambda: vf2.exists(query, graph))
