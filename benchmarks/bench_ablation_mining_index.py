"""Ablation C — mining-based vs enumeration-based indexing.

Section II-B1 of the paper contrasts the two IFV construction strategies:
mining-based methods (TreePi/SwiftIndex/gIndex family) spend much more
time building their index than the enumeration-based ones, in exchange for
a smaller index; and their thresholds are hard to set.  This ablation
measures that trade-off directly on the AIDS-like stand-in and sweeps the
support threshold.
"""

from __future__ import annotations

from statistics import mean

from repro.bench.harness import get_query_sets, get_real_dataset
from repro.bench.reporting import Table
from repro.index import GrapesIndex, MiningTreeIndex
from repro.matching import VF2Matcher
from repro.utils.timing import Timer


def test_ablation_mining_vs_enumeration(benchmark, config, emit):
    db = get_real_dataset("AIDS", config)
    queries = list(get_query_sets("AIDS", config)[f"Q{max(config.edge_counts)}S"].queries)
    vf2 = VF2Matcher()
    answers = {
        id(q): {gid for gid, g in db.items() if vf2.exists(q, g)} for q in queries
    }

    def evaluate(index) -> tuple[float, float, float]:
        with Timer() as t:
            index.build(db)
        per_query = []
        for q in queries:
            candidates = index.candidates(q)
            assert answers[id(q)] <= candidates  # soundness always
            if candidates:
                per_query.append(len(answers[id(q)]) / len(candidates))
        precision = mean(per_query) if per_query else 1.0
        return t.elapsed, index.memory_bytes() / (1024 * 1024), precision

    table = Table(
        "Ablation C — mining vs enumeration indexing on AIDS stand-in",
        ["indexing time (s)", "memory (MB)", "filtering precision"],
    )
    grapes_time, grapes_mem, grapes_prec = evaluate(
        GrapesIndex(max_path_edges=config.max_path_edges)
    )
    table.add_row(
        "Grapes (enumeration)",
        {
            "indexing time (s)": grapes_time,
            "memory (MB)": grapes_mem,
            "filtering precision": grapes_prec,
        },
    )
    mining_times = {}
    for support in (0.05, 0.2, 0.5):
        m_time, m_mem, m_prec = evaluate(
            MiningTreeIndex(
                max_tree_edges=config.max_tree_edges, min_support=support
            )
        )
        mining_times[support] = m_time
        table.add_row(
            f"TreePi (mining, minSup={support})",
            {
                "indexing time (s)": m_time,
                "memory (MB)": m_mem,
                "filtering precision": m_prec,
            },
        )
    emit("ablation_mining_index", table)

    # Paper claim: mining costs far more build time than path enumeration.
    assert min(mining_times.values()) > grapes_time

    # Benchmark: one mining pass over a small slice of the database.
    from repro.graph import GraphDatabase

    slice_db = GraphDatabase()
    for gid in db.ids()[:10]:
        slice_db.add_graph(db[gid])

    def mine_slice():
        MiningTreeIndex(max_tree_edges=2, min_support=0.2).build(slice_db)

    benchmark.pedantic(mine_slice, rounds=3, iterations=1)
