"""Ablation A — decomposing CFQL: which filter and which order win?

The paper builds CFQL from the observation that CFL's *filter* is the
fastest and GraphQL's *ordering* is the most robust (Section III-B).  This
ablation measures the four filter × order combinations directly on one
dataset, checking the two claims that justify the hybrid.
"""

from __future__ import annotations

from statistics import mean

from repro.bench.harness import get_query_sets, get_real_dataset
from repro.bench.reporting import Table
from repro.matching import CFLMatcher, CFQLMatcher, GraphQLMatcher
from repro.utils.timing import Timer


def test_ablation_matcher_parts(benchmark, config, emit):
    db = get_real_dataset("AIDS", config)
    graphs = db.graphs()
    queries = list(get_query_sets("AIDS", config)[f"Q{max(config.edge_counts)}S"].queries)

    matchers = {
        "CFL filter + CFL order (CFL)": CFLMatcher(),
        "GraphQL filter + GraphQL order (GraphQL)": GraphQLMatcher(),
        "CFL filter + GraphQL order (CFQL)": CFQLMatcher(),
    }

    filter_times: dict[str, list[float]] = {name: [] for name in matchers}
    total_times: dict[str, list[float]] = {name: [] for name in matchers}
    for query in queries:
        for graph in graphs:
            for name, matcher in matchers.items():
                with Timer() as t_total:
                    outcome = matcher.run(query, graph, limit=1)
                filter_times[name].append(outcome.filter_time)
                total_times[name].append(t_total.elapsed)

    table = Table(
        "Ablation A — matcher decomposition on AIDS stand-in (ms per graph)",
        ["filter time", "first-match total"],
    )
    for name in matchers:
        table.add_row(
            name,
            {
                "filter time": mean(filter_times[name]) * 1000.0,
                "first-match total": mean(total_times[name]) * 1000.0,
            },
        )
    emit("ablation_matcher_parts", table)

    # Claim 1: CFL's filter is faster than GraphQL's.
    cfl_filter = mean(filter_times["CFL filter + CFL order (CFL)"])
    gql_filter = mean(filter_times["GraphQL filter + GraphQL order (GraphQL)"])
    assert cfl_filter < gql_filter

    # Claim 2: the hybrid's total is competitive with the best component
    # (never pathologically worse than either constituent).
    cfql_total = mean(total_times["CFL filter + GraphQL order (CFQL)"])
    best_total = min(
        mean(total_times["CFL filter + CFL order (CFL)"]),
        mean(total_times["GraphQL filter + GraphQL order (GraphQL)"]),
    )
    assert cfql_total <= 2.0 * best_total

    # Benchmark: the hybrid's full first-match run on one pair.
    matcher = CFQLMatcher()
    query, graph = queries[0], graphs[0]
    benchmark(lambda: matcher.run(query, graph, limit=1))
