"""Small helpers for asserting shape claims over result tables."""

from __future__ import annotations

from statistics import mean

from repro.bench.reporting import Table


def float_cells(table: Table, row_label: str) -> list[float]:
    """The numeric cells of one row (skipping OOT/OOM/N-A/omitted)."""
    values = []
    for column in table.columns:
        cell = table.cell(row_label, column)
        if isinstance(cell, (int, float)):
            values.append(float(cell))
    return values


def row_mean(table: Table, row_label: str) -> float | None:
    values = float_cells(table, row_label)
    return mean(values) if values else None


def paired_cells(
    table: Table, row_a: str, row_b: str
) -> list[tuple[float, float]]:
    """Column-aligned numeric pairs from two rows (both cells numeric)."""
    pairs = []
    for column in table.columns:
        a = table.cell(row_a, column)
        b = table.cell(row_b, column)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            pairs.append((float(a), float(b)))
    return pairs
