"""Experiment table8 — Table VIII: indexing time on the synthetic sweeps.

Shape claims (Section IV-C1): indexing cost of the path indices grows
steeply with density and graph size (up to OOT/OOM at the top of each
axis); CT-Index fails on most synthetic configurations; index construction
is what limits IFV scalability.
"""

from __future__ import annotations

from repro.bench.experiments import table8_synthetic_indexing_time
from repro.bench.harness import get_synthetic_sweep
from repro.index import GGSXIndex

from shapes import float_cells


def test_table8_synthetic_indexing_time(benchmark, config, emit):
    tables = table8_synthetic_indexing_time(config)
    emit("table8_synthetic_indexing", tables)

    # Indexing time grows along the degree axis for the path indices
    # (compare first and last numeric point), or ends in OOT/OOM.
    degree_table = tables["avg_degree"]
    for algorithm in ("Grapes", "GGSX"):
        numeric = float_cells(degree_table, algorithm)
        last_cell = degree_table.cell(algorithm, degree_table.columns[-1])
        assert (
            last_cell in ("OOT", "OOM")
            or (len(numeric) >= 2 and numeric[-1] > numeric[0])
        ), algorithm

    # CT-Index fails (OOT/OOM) on at least the densest configuration.
    ct_cells = [
        degree_table.cell("CT-Index", col) for col in degree_table.columns[-2:]
    ]
    assert any(cell in ("OOT", "OOM") for cell in ct_cells) or all(
        isinstance(c, float) for c in ct_cells
    )

    # Indexing time also grows with the database size axis.
    d_table = tables["num_graphs"]
    for algorithm in ("Grapes", "GGSX"):
        numeric = float_cells(d_table, algorithm)
        if len(numeric) >= 2:
            assert numeric[-1] > numeric[0], algorithm

    # Benchmark: GGSX suffix-trie indexing of one base-config graph.
    sweep = get_synthetic_sweep("num_labels", config)
    db = sweep[sorted(sweep)[len(sweep) // 2]]
    graph = db[db.ids()[0]]

    def index_one():
        GGSXIndex(max_path_edges=config.max_path_edges).add_graph(0, graph)

    benchmark.pedantic(index_one, rounds=3, iterations=1)
