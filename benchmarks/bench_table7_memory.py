"""Experiment table7 — Table VII: memory cost on real-world stand-ins.

Shape claims (Section IV-B5): the IFV indices consume memory that can grow
far beyond the CSR datasets themselves (exponential on dense graphs),
while CFQL's auxiliary candidate structures stay tiny
(O(|V(q)|·|E(G)|) per active graph).
"""

from __future__ import annotations

from repro.bench.experiments import table7_memory_cost
from repro.bench.harness import get_query_sets, get_real_dataset
from repro.matching import CFQLMatcher
from repro.utils.memory import deep_size_of


def test_table7_memory_cost(benchmark, config, emit):
    table = table7_memory_cost(config)
    emit("table7_memory", table)

    for dataset in table.columns:
        datasets_mb = table.cell("Datasets", dataset)
        cfql_mb = table.cell("CFQL", dataset)
        grapes_mb = table.cell("Grapes", dataset)
        assert isinstance(datasets_mb, float) and datasets_mb > 0
        # CFQL's auxiliary structure is tiny: below the dataset itself and
        # far below the Grapes index.
        assert cfql_mb < datasets_mb
        assert cfql_mb < grapes_mb / 10.0
    # On the dense datasets the path indices dwarf the stored graphs.
    for dense in ("PCM", "PPI"):
        assert table.cell("Grapes", dense) > 5.0 * table.cell("Datasets", dense)

    # Benchmark: measuring the candidate-structure footprint itself.
    # Scan for a (query, graph) pair the filter does not prune (most
    # graphs do not contain any given query — that is the point).
    db = get_real_dataset("AIDS", config)
    matcher = CFQLMatcher()
    phi = None
    for query in get_query_sets("AIDS", config)[f"Q{min(config.edge_counts)}S"].queries:
        for gid in db.ids():
            phi = matcher.build_candidates(query, db[gid])
            if phi is not None:
                break
        if phi is not None:
            break
    assert phi is not None
    benchmark(lambda: deep_size_of(phi))
