"""Experiment fig7 — Figure 7: total query time on real-world stand-ins.

Shape claims (Section IV-B4): CFQL is the fastest vcFV algorithm and is
competitive with vcGrapes/vcGGSX (which share its verification method);
the modern verification keeps every vcFV/IvcFV algorithm inside the time
limit everywhere, while VF2-based IFV algorithms struggle on the
verification-heavy datasets.
"""

from __future__ import annotations

from repro.bench.experiments import fig7_query_time
from repro.bench.harness import get_query_sets, get_real_dataset
from repro.core import create_engine

from shapes import float_cells, row_mean


def test_fig7_query_time(benchmark, config, emit):
    tables = fig7_query_time(config)
    emit("fig7_query_time", tables)

    # CFQL completes every query set on every dataset (no omissions).
    for dataset, table in tables.items():
        assert len(float_cells(table, "CFQL")) == len(table.columns), dataset

    # CFQL is the leading vcFV algorithm: never far behind the best of
    # CFL/GraphQL on any dataset (small query counts make per-dataset
    # means noisy), and clearly ahead of GraphQL overall (GraphQL's
    # pseudo-isomorphism filter is the consistently expensive part).
    cfql_means, graphql_means = [], []
    for dataset, table in tables.items():
        cfql = row_mean(table, "CFQL")
        cfl = row_mean(table, "CFL")
        graphql = row_mean(table, "GraphQL")
        assert cfql is not None
        if cfl is not None and graphql is not None:
            assert cfql <= 2.5 * min(cfl, graphql), dataset
            cfql_means.append(cfql)
            graphql_means.append(graphql)
    assert sum(cfql_means) < sum(graphql_means)

    # CFQL is competitive with the IvcFV algorithms (same verification):
    # within 2x of vcGrapes wherever both ran.
    for dataset, table in tables.items():
        cfql = row_mean(table, "CFQL")
        vc = row_mean(table, "vcGrapes")
        if cfql is not None and vc is not None:
            assert cfql <= 3.0 * vc, dataset

    # Benchmark: one CFQL query end-to-end on the PCM-like dataset.
    db = get_real_dataset("PCM", config)
    engine = create_engine(db, "CFQL")
    query = get_query_sets("PCM", config)[f"Q{min(config.edge_counts)}D"].queries[0]
    benchmark.pedantic(lambda: engine.query(query), rounds=3, iterations=1)
