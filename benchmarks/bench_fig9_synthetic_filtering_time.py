"""Experiment fig9 — Figure 9: filtering time on the synthetic sweeps.

Shape claims (Section IV-C2): CFQL's filtering time is roughly linear in
d(G), |V(G)| and |D| (its filter is O(|E(q)|·|E(G)|) per graph, summed
over the database) and *decreases* as |Σ| grows (the label filter kills
candidates earlier); it completes every sweep point comfortably.
"""

from __future__ import annotations

from repro.bench.experiments import fig9_synthetic_filtering_time
from repro.bench.harness import get_synthetic_sweep

from shapes import float_cells


def test_fig9_synthetic_filtering_time(benchmark, config, emit):
    tables = fig9_synthetic_filtering_time(config)
    emit("fig9_synthetic_filtering_time", tables)

    # CFQL completes the entire grid.
    for axis, table in tables.items():
        assert len(float_cells(table, "CFQL")) == len(table.columns), axis

    # Growth along |D|: the largest database point costs more than the
    # smallest (roughly linear in practice).
    d_values = float_cells(tables["num_graphs"], "CFQL")
    assert d_values[-1] > d_values[0]

    # Decrease with more labels: |Σ| = 80 cheaper than |Σ| = 1.
    label_values = float_cells(tables["num_labels"], "CFQL")
    assert label_values[-1] < label_values[0]

    # Absolute scale: CFQL filtering stays below the query time limit.
    limit_ms = config.query_time_limit * 1000.0
    for table in tables.values():
        for value in float_cells(table, "CFQL"):
            assert value < limit_ms

    # Benchmark: CFQL filter on the densest sweep point's first graph.
    sweep = get_synthetic_sweep("avg_degree", config)
    db = sweep[max(sweep)]
    graph = db[db.ids()[0]]
    from repro.matching import CFQLMatcher
    from repro.workloads import generate_query_set

    query = generate_query_set(db, 8, dense=False, size=1, seed=3).queries[0]
    matcher = CFQLMatcher()
    benchmark(lambda: matcher.build_candidates(query, graph))
